// Tests driving the unified transport Link (net/link.h) directly, plus the
// EventLoop timer facility it paces shaped deliveries with: nonblocking
// connect success / refusal / timeout, handshakes split across partial
// reads, close-during-handshake, server-role accept and reject (the
// Draining flush), and timer-paced pause/resume delivery.  The CI
// ThreadSanitizer job runs this whole binary.  Every suite is
// parameterized over both I/O backends (backend_param.h): under uring the
// same tests exercise the completion-mode recv/send drivers and the
// SEND_ZC zerocopy tier instead of readiness + errqueue.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "backend_param.h"
#include "net/framing.h"
#include "net/link.h"
#include "net/poller.h"
#include "net/socket.h"

namespace rsf::net {
namespace {

class LinkTest : public BackendSkipTest {};
RSF_INSTANTIATE_BACKEND_SUITE(LinkTest);

class LinkZeroCopyTest : public BackendSkipTest {};
RSF_INSTANTIATE_BACKEND_SUITE(LinkZeroCopyTest);

class LinkWriteTimeoutTest : public BackendSkipTest {};
RSF_INSTANTIATE_BACKEND_SUITE(LinkWriteTimeoutTest);

class LoopTimerTest : public BackendParamTest {};
RSF_INSTANTIATE_BACKEND_SUITE(LoopTimerTest);

// Spins until `predicate` holds or ~5 s pass (link transitions happen on
// the loop thread; tests observe them from the main thread).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 5000; ++i) {
    if (predicate()) return true;
    SleepForNanos(1'000'000);
  }
  return predicate();
}

std::vector<uint8_t> Bytes(const char* text) {
  const auto* data = reinterpret_cast<const uint8_t*>(text);
  return {data, data + std::strlen(text)};
}

/// A started EventLoop plus the bookkeeping every link test wants: counts
/// of establishes/closes and the received frames.
struct LinkHarness {
  EventLoop loop;
  std::atomic<int> established{0};
  std::atomic<int> closed{0};
  std::atomic<int> frames{0};
  std::mutex mutex;
  std::vector<uint8_t> last_payload;  // guarded by mutex
  std::vector<uint8_t> receive_buf;   // loop-confined

  explicit LinkHarness(IoBackendKind kind) : loop(kind) { loop.Start(); }
  ~LinkHarness() { loop.Stop(); }

  /// Client-role callbacks: sends `request`, accepts any non-empty reply,
  /// records delivered frames.
  Link::Callbacks ClientCallbacks(std::vector<uint8_t> request) {
    Link::Callbacks callbacks;
    callbacks.make_handshake_request = [request] { return request; };
    callbacks.on_handshake_reply = [](const uint8_t*, uint32_t length) {
      return length > 0;
    };
    callbacks.alloc = [this](uint32_t length) {
      receive_buf.resize(length == 0 ? 1 : length);
      return receive_buf.data();
    };
    callbacks.on_frame = [this](uint32_t length) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        last_payload.assign(receive_buf.data(), receive_buf.data() + length);
      }
      frames.fetch_add(1);
    };
    callbacks.on_established = [this](const std::shared_ptr<Link>&) {
      established.fetch_add(1);
    };
    callbacks.on_closed = [this](const std::shared_ptr<Link>&) {
      closed.fetch_add(1);
    };
    return callbacks;
  }
};

/// Blocking server peer: accepts one connection, reads the handshake
/// request, replies, and hands the connection to `body`.
void RunServerPeer(
    TcpListener& listener, std::vector<uint8_t>* request_out,
    const std::vector<uint8_t>& reply,
    const std::function<void(TcpConnection&)>& body = nullptr) {
  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  std::vector<uint8_t> request;
  uint32_t length = 0;
  ASSERT_TRUE(ReadFrame(
                  *conn,
                  [&](uint32_t len) {
                    request.resize(len == 0 ? 1 : len);
                    return request.data();
                  },
                  &length)
                  .ok());
  request.resize(length);
  if (request_out != nullptr) *request_out = request;
  ASSERT_TRUE(WriteFrame(*conn, reply).ok());
  if (body) body(*conn);
}

TEST_P(LinkTest, DialSucceedsHandshakesAndReceivesFrames) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::vector<uint8_t> seen_request;
  std::thread server([&] {
    RunServerPeer(*listener, &seen_request, Bytes("welcome"),
                  [](TcpConnection& conn) {
                    ASSERT_TRUE(WriteFrame(conn, Bytes("payload-1")).ok());
                    ASSERT_TRUE(WriteFrame(conn, Bytes("payload-2")).ok());
                  });
  });

  auto link = Link::Dial("127.0.0.1", listener->port(), &harness.loop,
                         Link::Options{},
                         harness.ClientCallbacks(Bytes("hello")));
  ASSERT_TRUE(WaitFor([&] { return harness.frames.load() >= 2; }));
  server.join();

  EXPECT_EQ(harness.established.load(), 1);
  EXPECT_EQ(seen_request, Bytes("hello"));
  {
    std::lock_guard<std::mutex> lock(harness.mutex);
    EXPECT_EQ(harness.last_payload, Bytes("payload-2"));
  }
  EXPECT_EQ(link->stats().frames_received, 2u);

  // Server side is gone: the link notices EOF and closes itself.
  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  EXPECT_EQ(link->state(), Link::State::kClosed);
}

TEST_P(LinkTest, DialRefusedReportsClosedNeverEstablished) {
  // Grab an ephemeral port, then close the listener so the dial is refused.
  uint16_t dead_port = 0;
  {
    auto listener = TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
    listener->Close();
  }

  LinkHarness harness(GetParam());
  auto link = Link::Dial("127.0.0.1", dead_port, &harness.loop,
                         Link::Options{},
                         harness.ClientCallbacks(Bytes("hello")));
  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  EXPECT_EQ(harness.established.load(), 0);
  EXPECT_EQ(link->state(), Link::State::kClosed);
}

TEST_P(LinkTest, DialToBlackholePeerTimesOut) {
  // RFC 5737 TEST-NET-1 is guaranteed unrouted: the connect either hangs
  // until the link's own timer fires (the case under test) or fails fast
  // with EHOSTUNREACH/ENETUNREACH in constrained sandboxes — both must
  // surface as on_closed with no establish.
  LinkHarness harness(GetParam());
  Link::Options options;
  options.connect_timeout_nanos = 200'000'000;  // 200 ms
  auto link = Link::Dial("192.0.2.1", 9, &harness.loop, options,
                         harness.ClientCallbacks(Bytes("hello")));
  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  EXPECT_EQ(harness.established.load(), 0);
  EXPECT_EQ(link->state(), Link::State::kClosed);
}

TEST_P(LinkTest, HandshakeReplySplitAcrossPartialReadsStillEstablishes) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> request;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      request.resize(len == 0 ? 1 : len);
                      return request.data();
                    },
                    &length)
                    .ok());
    // Dribble the reply frame one byte at a time: 4-byte LE length prefix,
    // then the payload.  The link's FrameReader must resume across events.
    const auto reply = Bytes("ok");
    const uint32_t reply_length = static_cast<uint32_t>(reply.size());
    std::vector<uint8_t> wire(4);
    std::memcpy(wire.data(), &reply_length, 4);
    wire.insert(wire.end(), reply.begin(), reply.end());
    for (const uint8_t byte : wire) {
      ASSERT_TRUE(conn->WriteAll({&byte, 1}).ok());
      SleepForNanos(2'000'000);
    }
    ASSERT_TRUE(WriteFrame(*conn, Bytes("after")).ok());
  });

  auto link = Link::Dial("127.0.0.1", listener->port(), &harness.loop,
                         Link::Options{},
                         harness.ClientCallbacks(Bytes("hello")));
  ASSERT_TRUE(WaitFor([&] { return harness.frames.load() >= 1; }));
  server.join();
  EXPECT_EQ(harness.established.load(), 1);
  EXPECT_EQ(link->stats().frames_received, 1u);
}

TEST_P(LinkTest, PeerCloseDuringHandshakeClosesLink) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    // Read the request, then hang up without ever replying.
    std::vector<uint8_t> request;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      request.resize(len == 0 ? 1 : len);
                      return request.data();
                    },
                    &length)
                    .ok());
    conn->Close();
  });

  auto link = Link::Dial("127.0.0.1", listener->port(), &harness.loop,
                         Link::Options{},
                         harness.ClientCallbacks(Bytes("hello")));
  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  server.join();
  EXPECT_EQ(harness.established.load(), 0);
  EXPECT_EQ(link->state(), Link::State::kClosed);
}

TEST_P(LinkTest, ServerRoleAcceptsHandshakeAndSendsFrames) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::shared_ptr<Link> server_link;
  std::mutex link_mutex;

  std::thread client_thread([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, Bytes("subscribe-me")).ok());
    std::vector<uint8_t> reply;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      reply.resize(len == 0 ? 1 : len);
                      return reply.data();
                    },
                    &length)
                    .ok());
    reply.resize(length);
    EXPECT_EQ(reply, Bytes("accepted"));
    // Now receive the app frame the established link flushes.
    std::vector<uint8_t> payload;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      payload.resize(len == 0 ? 1 : len);
                      return payload.data();
                    },
                    &length)
                    .ok());
    payload.resize(length);
    EXPECT_EQ(payload, Bytes("fanout"));
  });

  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  Link::Callbacks callbacks;
  callbacks.on_handshake_request = [](const uint8_t* data, uint32_t length,
                                      std::vector<uint8_t>* reply) {
    EXPECT_EQ(std::vector<uint8_t>(data, data + length), Bytes("subscribe-me"));
    *reply = Bytes("accepted");
    return true;
  };
  callbacks.on_established = [&](const std::shared_ptr<Link>& link) {
    {
      std::lock_guard<std::mutex> lock(link_mutex);
      server_link = link;
    }
    harness.established.fetch_add(1);
  };
  callbacks.on_closed = [&](const std::shared_ptr<Link>&) {
    harness.closed.fetch_add(1);
  };
  auto link = Link::Accepted(*std::move(conn), &harness.loop, Link::Options{},
                             std::move(callbacks));
  ASSERT_TRUE(WaitFor([&] { return harness.established.load() == 1; }));

  const auto payload = Bytes("fanout");
  auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[payload.size()]);
  std::memcpy(buffer.get(), payload.data(), payload.size());
  EXPECT_FALSE(link->EnqueueFrame(std::move(buffer),
                                  static_cast<uint32_t>(payload.size())));
  harness.loop.RunInLoop([link] { link->FlushOnLoop(); });

  client_thread.join();
  ASSERT_TRUE(WaitFor([&] { return link->stats().frames_sent >= 1; }));
  link->CloseSync();
}

TEST_P(LinkTest, ServerRoleRejectionFlushesErrorReplyThenCloses) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::thread client_thread([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, Bytes("bad-handshake")).ok());
    // The Draining state must flush the rejection reply before closing.
    std::vector<uint8_t> reply;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      reply.resize(len == 0 ? 1 : len);
                      return reply.data();
                    },
                    &length)
                    .ok());
    reply.resize(length);
    EXPECT_EQ(reply, Bytes("error=no"));
    // ...and then the peer hangs up on us.
    uint8_t byte = 0;
    EXPECT_FALSE(conn->ReadExact({&byte, 1}).ok());
  });

  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  Link::Callbacks callbacks;
  callbacks.on_handshake_request = [](const uint8_t*, uint32_t,
                                      std::vector<uint8_t>* reply) {
    *reply = Bytes("error=no");
    return false;
  };
  callbacks.on_closed = [&](const std::shared_ptr<Link>&) {
    harness.closed.fetch_add(1);
  };
  auto link = Link::Accepted(*std::move(conn), &harness.loop, Link::Options{},
                             std::move(callbacks));
  client_thread.join();
  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  EXPECT_EQ(link->state(), Link::State::kClosed);
}

TEST_P(LinkTest, TimerPacedPauseResumeDelaysDelivery) {
  // The shaped-delivery pattern, driven directly: every frame pauses the
  // link and resumes it 20 ms later via the loop timer, so three frames
  // sent back-to-back must take >= 2 pacing gaps to deliver.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::shared_ptr<Link> client_link;
  std::mutex link_mutex;
  constexpr uint64_t kGapNanos = 20'000'000;

  auto callbacks = harness.ClientCallbacks(Bytes("hello"));
  callbacks.on_established = [&](const std::shared_ptr<Link>& link) {
    {
      std::lock_guard<std::mutex> lock(link_mutex);
      client_link = link;
    }
    harness.established.fetch_add(1);
  };
  callbacks.on_frame = [&](uint32_t) {
    harness.frames.fetch_add(1);
    std::shared_ptr<Link> link;
    {
      std::lock_guard<std::mutex> lock(link_mutex);
      link = client_link;
    }
    ASSERT_NE(link, nullptr);
    link->PauseReading();
    EXPECT_TRUE(harness.loop.RunAfter(kGapNanos, [link] {
      if (link->established()) link->ResumeReading();
    }));
  };

  std::thread server([&] {
    RunServerPeer(*listener, nullptr, Bytes("ok"), [](TcpConnection& conn) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(WriteFrame(conn, Bytes("frame")).ok());
      }
    });
  });

  const uint64_t start = MonotonicNanos();
  auto link = Link::Dial("127.0.0.1", listener->port(), &harness.loop,
                         Link::Options{}, std::move(callbacks));
  ASSERT_TRUE(WaitFor([&] { return harness.frames.load() >= 3; }));
  const uint64_t elapsed = MonotonicNanos() - start;
  server.join();
  // Frame 1 delivers immediately; frames 2 and 3 each wait out one gap.
  EXPECT_GE(elapsed, 2 * kGapNanos);
  link->CloseSync();
}

/// Accepts one connection, performs the server-side handshake, then reads
/// `expect_frames` app frames, checking each payload against `expected`.
/// Signals `done` when finished and holds the socket open until `release`.
void RunReadingClientPeer(uint16_t port, int expect_frames,
                          const std::vector<uint8_t>& expected,
                          std::atomic<bool>& done,
                          std::atomic<bool>& release) {
  auto conn = TcpConnection::Connect("127.0.0.1", port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(WriteFrame(*conn, Bytes("subscribe-me")).ok());
  std::vector<uint8_t> buf;
  uint32_t length = 0;
  ASSERT_TRUE(ReadFrame(
                  *conn,
                  [&](uint32_t len) {
                    buf.resize(len == 0 ? 1 : len);
                    return buf.data();
                  },
                  &length)
                  .ok());
  for (int i = 0; i < expect_frames; ++i) {
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      buf.resize(len == 0 ? 1 : len);
                      return buf.data();
                    },
                    &length)
                    .ok());
    ASSERT_EQ(length, expected.size()) << "frame " << i;
    buf.resize(length);
    EXPECT_EQ(buf, expected) << "frame " << i;
  }
  done.store(true);
  while (!release.load()) SleepForNanos(1'000'000);
}

std::vector<uint8_t> PatternPayload(size_t size) {
  std::vector<uint8_t> payload(size);
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<uint8_t>((i * 31 + 7) & 0xff);
  }
  return payload;
}

std::shared_ptr<uint8_t[]> SharedCopy(const std::vector<uint8_t>& bytes) {
  auto buffer = std::shared_ptr<uint8_t[]>(new uint8_t[bytes.size()]);
  std::memcpy(buffer.get(), bytes.data(), bytes.size());
  return buffer;
}

Link::Callbacks AcceptingServerCallbacks(LinkHarness& harness) {
  Link::Callbacks callbacks;
  callbacks.on_handshake_request = [](const uint8_t*, uint32_t,
                                      std::vector<uint8_t>* reply) {
    *reply = Bytes("accepted");
    return true;
  };
  callbacks.on_established = [&harness](const std::shared_ptr<Link>&) {
    harness.established.fetch_add(1);
  };
  callbacks.on_closed = [&harness](const std::shared_ptr<Link>&) {
    harness.closed.fetch_add(1);
  };
  return callbacks;
}

TEST_P(LinkZeroCopyTest, CompletionsReleaseHoldersInOrderAndBytesArriveIntact) {
  // Above-threshold frames leave via MSG_ZEROCOPY: each send pins the
  // payload holder until the kernel's completion releases it.  Loopback
  // reports every completion as COPIED; copied_limit 0 keeps the tier on
  // anyway so this test exercises the full completion path.  The peer
  // byte-checks every frame — the stream must interleave copied headers
  // and pinned payloads without corruption.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  const auto payload = PatternPayload(256 * 1024);  // > SO_SNDBUF: partial sends
  constexpr int kFrames = 3;
  std::atomic<bool> peer_done{false};
  std::atomic<bool> release_peer{false};
  std::thread client([&] {
    RunReadingClientPeer(listener->port(), kFrames, payload, peer_done,
                         release_peer);
  });

  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  Link::Options options;
  options.zerocopy_threshold = 64 * 1024;
  options.zerocopy_copied_limit = 0;  // never auto-disable
  auto link = Link::Accepted(*std::move(conn), &harness.loop, options,
                             AcceptingServerCallbacks(harness));
  ASSERT_TRUE(WaitFor([&] { return harness.established.load() == 1; }));
  ASSERT_TRUE(link->ZeroCopyActive());

  const uint64_t zc_sends_before = ZeroCopySendCount();
  auto buffer = SharedCopy(payload);
  std::weak_ptr<uint8_t[]> weak = buffer;
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_FALSE(
        link->EnqueueFrame(buffer, static_cast<uint32_t>(payload.size())));
  }
  buffer.reset();
  harness.loop.RunInLoop([link] { link->FlushOnLoop(); });

  ASSERT_TRUE(WaitFor([&] { return peer_done.load(); }));
  // Completions drain on EPOLLERR; once all are in, every pinned holder is
  // released and the payload (whose only other refs were the queue's) dies.
  ASSERT_TRUE(WaitFor([&] { return link->PendingZeroCopyHolders() == 0; }));
  ASSERT_TRUE(WaitFor([&] { return weak.expired(); }));

  const auto stats = link->stats();
  // +1: the handshake reply frame flows through the same writer.
  EXPECT_EQ(stats.frames_sent, static_cast<uint64_t>(kFrames) + 1);
  EXPECT_EQ(stats.zerocopy_frames, static_cast<uint64_t>(kFrames));
  EXPECT_GT(stats.zerocopy_copied, 0u);  // loopback always reports copied
  EXPECT_GT(ZeroCopySendCount(), zc_sends_before);
  EXPECT_TRUE(link->ZeroCopyActive());  // limit 0: copied never disables

  release_peer.store(true);
  client.join();
  link->CloseSync();
}

TEST_P(LinkZeroCopyTest, CopiedCompletionsAutoDisableTheTier) {
  // Loopback can never do true zerocopy — the kernel copies and flags the
  // completion SO_EE_CODE_ZEROCOPY_COPIED.  After copied_limit such
  // completions the link must stop paying for pinning and revert to the
  // plain copy path, with frames still arriving intact throughout.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  const auto payload = PatternPayload(96 * 1024);
  constexpr int kFrames = 6;
  std::atomic<bool> peer_done{false};
  std::atomic<bool> release_peer{false};
  std::thread client([&] {
    RunReadingClientPeer(listener->port(), kFrames, payload, peer_done,
                         release_peer);
  });

  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  Link::Options options;
  options.zerocopy_threshold = 64 * 1024;
  options.zerocopy_copied_limit = 1;  // first copied completion disables
  auto link = Link::Accepted(*std::move(conn), &harness.loop, options,
                             AcceptingServerCallbacks(harness));
  ASSERT_TRUE(WaitFor([&] { return harness.established.load() == 1; }));

  for (int i = 0; i < kFrames; ++i) {
    auto buffer = SharedCopy(payload);
    EXPECT_FALSE(link->EnqueueFrame(std::move(buffer),
                                    static_cast<uint32_t>(payload.size())));
    harness.loop.RunInLoop([link] { link->FlushOnLoop(); });
    // One frame at a time so completions (and the disable) land between
    // sends rather than after the whole burst.  +1: the handshake reply
    // frame flows through the same writer.
    ASSERT_TRUE(WaitFor([&] {
      return link->stats().frames_sent == static_cast<uint64_t>(i + 2);
    }));
  }

  ASSERT_TRUE(WaitFor([&] { return peer_done.load(); }));
  ASSERT_TRUE(WaitFor([&] { return !link->ZeroCopyActive(); }));
  const auto stats = link->stats();
  EXPECT_EQ(stats.frames_sent, static_cast<uint64_t>(kFrames) + 1);
  EXPECT_GT(stats.zerocopy_copied, 0u);
  // At least the first frame went out pinned; after the disable the rest
  // travelled the copy path, so not every frame is a zerocopy frame.
  EXPECT_GE(stats.zerocopy_frames, 1u);
  EXPECT_LT(stats.zerocopy_frames, static_cast<uint64_t>(kFrames));
  ASSERT_TRUE(WaitFor([&] { return link->PendingZeroCopyHolders() == 0; }));

  release_peer.store(true);
  client.join();
  link->CloseSync();
}

TEST_P(LinkWriteTimeoutTest, StalledPeerClosesLinkAndStrandsFrames) {
  // A peer that handshakes and then never reads again: the socket buffers
  // fill, the writer stops making progress, and the write-progress
  // deadline must close the link (on_closed fires, queued frames counted
  // as stranded) instead of pinning queue memory forever.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  LinkHarness harness(GetParam());
  std::atomic<bool> release_peer{false};
  std::thread client([&] {
    auto conn = TcpConnection::Connect("127.0.0.1", listener->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(WriteFrame(*conn, Bytes("subscribe-me")).ok());
    std::vector<uint8_t> reply;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *conn,
                    [&](uint32_t len) {
                      reply.resize(len == 0 ? 1 : len);
                      return reply.data();
                    },
                    &length)
                    .ok());
    // ... and never read another byte.
    while (!release_peer.load()) SleepForNanos(1'000'000);
  });

  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  Link::Options options;
  options.write_timeout_nanos = 150'000'000;  // 150 ms
  auto link = Link::Accepted(*std::move(conn), &harness.loop, options,
                             AcceptingServerCallbacks(harness));
  ASSERT_TRUE(WaitFor([&] { return harness.established.load() == 1; }));

  // Enough bytes to overrun both kernel buffers (256 KiB each way), so
  // frames stay queued in the writer with no forward progress.
  const auto payload = PatternPayload(128 * 1024);
  for (int i = 0; i < 16; ++i) {
    link->EnqueueFrame(SharedCopy(payload),
                       static_cast<uint32_t>(payload.size()));
  }
  harness.loop.RunInLoop([link] { link->FlushOnLoop(); });

  ASSERT_TRUE(WaitFor([&] { return harness.closed.load() == 1; }));
  EXPECT_EQ(link->state(), Link::State::kClosed);
  EXPECT_GT(link->stats().frames_stranded, 0u);

  release_peer.store(true);
  client.join();
}

TEST_P(LoopTimerTest, RunAfterFiresOnLoopThreadInDeadlineOrder) {
  EventLoop& loop = *loop_;
  loop.Start();

  std::mutex mutex;
  std::vector<int> order;  // guarded by mutex
  std::atomic<int> fired{0};
  std::atomic<bool> on_loop_thread{true};
  const auto arm = [&](int id, uint64_t delay_nanos) {
    ASSERT_TRUE(loop.RunAfter(delay_nanos, [&, id] {
      if (!loop.InLoopThread()) on_loop_thread.store(false);
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(id);
      fired.fetch_add(1);
    }));
  };
  arm(5, 600'000'000);
  arm(1, 200'000'000);
  arm(3, 400'000'000);
  // timers_ is loop-confined: count from the loop thread (this also
  // barriers the off-loop RunAfter posts, which arm via the task queue).
  size_t armed = 0;
  loop.RunSync([&] { armed = loop.NumTimers(); });
  EXPECT_EQ(armed, 3u);

  ASSERT_TRUE(WaitFor([&] { return fired.load() == 3; }));
  EXPECT_TRUE(on_loop_thread.load());
  {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  }
  loop.RunSync([&] { armed = loop.NumTimers(); });
  EXPECT_EQ(armed, 0u);
  loop.Stop();
}

TEST_P(LoopTimerTest, ZeroDelayFiresPromptly) {
  EventLoop& loop = *loop_;
  loop.Start();
  std::atomic<bool> fired{false};
  ASSERT_TRUE(loop.RunAfter(0, [&] { fired.store(true); }));
  ASSERT_TRUE(WaitFor([&] { return fired.load(); }));
  loop.Stop();
}

TEST_P(LoopTimerTest, RunAfterRefusedAfterStop) {
  EventLoop& loop = *loop_;
  loop.Start();
  loop.Stop();
  EXPECT_FALSE(loop.RunAfter(1'000, [] {}));
}

TEST_P(LoopTimerTest, TimerReschedulingItselfDoesNotRefireInSameDrain) {
  EventLoop& loop = *loop_;
  loop.Start();
  std::atomic<int> fired{0};
  std::function<void()> chain = [&] {
    if (fired.fetch_add(1) + 1 < 3) {
      EXPECT_TRUE(loop.RunAfter(1'000'000, chain));
    }
  };
  ASSERT_TRUE(loop.RunAfter(1'000'000, chain));
  ASSERT_TRUE(WaitFor([&] { return fired.load() == 3; }));
  loop.Stop();
}

}  // namespace
}  // namespace rsf::net
