// Tests for the reactor (net/poller.h) and the resumable framing state
// machines it drives (FrameReader/FrameWriter): task posting and the
// RunSync teardown handshake, readiness dispatch, frames split across
// arbitrary readiness events, mid-frame peer close, short-write resume,
// drop-oldest eviction, and a mixed connect/disconnect stress that the CI
// ThreadSanitizer job runs.  The loop suites are parameterized over both
// I/O backends (backend_param.h); the FrameReader/FrameWriter suites drive
// sockets directly and stay backend-free.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/endian.h"
#include "backend_param.h"
#include "net/framing.h"
#include "net/poller.h"
#include "net/socket.h"

namespace rsf::net {
namespace {

class EventLoopBackends : public BackendParamTest {};
RSF_INSTANTIATE_BACKEND_SUITE(EventLoopBackends);

class PollerStress : public BackendParamTest {};
RSF_INSTANTIATE_BACKEND_SUITE(PollerStress);

std::pair<TcpConnection, TcpConnection> MakePair() {
  auto listener = TcpListener::Listen(0);
  SFM_CHECK(listener.ok());
  TcpConnection server;
  std::thread acceptor([&] {
    auto conn = listener->Accept();
    SFM_CHECK(conn.ok());
    server = *std::move(conn);
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  SFM_CHECK(client.ok());
  acceptor.join();
  return {*std::move(client), std::move(server)};
}

size_t CountProcessThreads() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/task");
  SFM_CHECK(dir != nullptr);
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

// Spins until `predicate` holds or ~2 s pass (events arrive on the loop
// thread; tests observe them from the main thread).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    SleepForNanos(1'000'000);
  }
  return predicate();
}

TEST_P(EventLoopBackends, PostRunsTaskOnLoopThread) {
  EventLoop& loop = *loop_;
  loop.Start();
  std::atomic<bool> ran{false};
  std::thread::id loop_thread;
  ASSERT_TRUE(loop.Post([&] {
    loop_thread = std::this_thread::get_id();
    ran.store(true, std::memory_order_release);
  }));
  ASSERT_TRUE(WaitFor([&] { return ran.load(std::memory_order_acquire); }));
  EXPECT_NE(loop_thread, std::this_thread::get_id());
  loop.Stop();
}

TEST_P(EventLoopBackends, RunSyncBlocksUntilExecuted) {
  EventLoop& loop = *loop_;
  loop.Start();
  int value = 0;
  loop.RunSync([&] { value = 42; });
  EXPECT_EQ(value, 42);  // no synchronization needed: RunSync is the barrier
  loop.Stop();
  // After Stop, RunSync degrades to inline execution instead of hanging.
  loop.RunSync([&] { value = 43; });
  EXPECT_EQ(value, 43);
}

TEST_P(EventLoopBackends, StopRunsEveryAcceptedTask) {
  EventLoop& loop = *loop_;
  loop.Start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    if (!loop.Post([&] { ran.fetch_add(1); })) break;
  }
  const int accepted = 100;  // all posts precede Stop, so all are accepted
  loop.Stop();
  EXPECT_EQ(ran.load(), accepted);
}

TEST_P(EventLoopBackends, ReadableEventDispatches) {
  EventLoop& loop = *loop_;
  loop.Start();
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  std::atomic<int> bytes_seen{0};
  loop.RunSync([&] {
    loop.Add(server.fd(), kEventReadable, [&](uint32_t events) {
      EXPECT_TRUE(events & kEventReadable);
      uint8_t buffer[64];
      auto n = server.ReadSome(buffer);
      if (n.ok() && *n > 0) bytes_seen.fetch_add(static_cast<int>(*n));
    });
  });
  const uint8_t payload[] = {1, 2, 3};
  ASSERT_TRUE(client.WriteAll(payload).ok());
  ASSERT_TRUE(WaitFor([&] { return bytes_seen.load() == 3; }));
  loop.RunSync([&] { loop.Remove(server.fd()); });
  loop.Stop();
}

TEST_P(EventLoopBackends, RemoveInsideOwnCallbackIsSafe) {
  EventLoop& loop = *loop_;
  loop.Start();
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  std::atomic<bool> removed{false};
  loop.RunSync([&] {
    loop.Add(server.fd(), kEventReadable, [&](uint32_t) {
      loop.Remove(server.fd());
      removed.store(true, std::memory_order_release);
    });
  });
  const uint8_t byte = 0x55;
  ASSERT_TRUE(client.WriteAll({&byte, 1}).ok());
  ASSERT_TRUE(WaitFor([&] { return removed.load(std::memory_order_acquire); }));
  size_t handlers = 1;
  loop.RunSync([&] { handlers = loop.NumHandlers(); });
  EXPECT_EQ(handlers, 0u);
  loop.Stop();
}

TEST_P(EventLoopBackends, ManyFdsOneThread) {
  // The reactor promise: adding links adds NO threads.
  EventLoop& loop = *loop_;
  loop.Start();
  const size_t before = CountProcessThreads();
  std::vector<std::pair<TcpConnection, TcpConnection>> pairs;
  for (int i = 0; i < 50; ++i) pairs.push_back(MakePair());
  loop.RunSync([&] {
    for (auto& [client, server] : pairs) {
      (void)server.SetNonBlocking(true);
      loop.Add(server.fd(), kEventReadable, [](uint32_t) {});
    }
  });
  EXPECT_EQ(CountProcessThreads(), before);
  loop.RunSync([&] {
    for (auto& [client, server] : pairs) loop.Remove(server.fd());
  });
  loop.Stop();
}

// ---- FrameReader ----

TEST(FrameReader, HeaderSplitAcrossEvents) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  FrameReader reader;
  std::vector<uint8_t> destination;
  int allocator_calls = 0;
  const FrameAllocator alloc = [&](uint32_t len) {
    ++allocator_calls;
    destination.resize(len);
    return destination.data();
  };

  // Drip the 4-byte length prefix one byte at a time; the reader must
  // report kNeedMore at every partial step and never call the allocator.
  uint8_t header[4];
  rsf::StoreLE<uint32_t>(header, 3);
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.WriteAll({&header[i], 1}).ok());
    ASSERT_TRUE(WaitFor([&] {
      auto step = reader.Poll(server, alloc, &length);
      SFM_CHECK(step.ok());
      return i == 3 ? reader.MidFrame()
                    : *step == FrameReader::Step::kNeedMore;
    }));
  }
  EXPECT_EQ(allocator_calls, 1);  // fired exactly when the header completed
  EXPECT_TRUE(reader.MidFrame());

  const uint8_t payload[] = {7, 8, 9};
  ASSERT_TRUE(client.WriteAll(payload).ok());
  ASSERT_TRUE(WaitFor([&] {
    auto step = reader.Poll(server, alloc, &length);
    SFM_CHECK(step.ok());
    return *step == FrameReader::Step::kFrame;
  }));
  EXPECT_EQ(length, 3u);
  EXPECT_EQ(allocator_calls, 1);
  EXPECT_EQ(destination[0], 7);
  EXPECT_EQ(destination[2], 9);
  EXPECT_FALSE(reader.MidFrame());
}

TEST(FrameReader, PayloadSplitAcrossEvents) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  FrameReader reader;
  std::vector<uint8_t> destination;
  int allocator_calls = 0;
  const FrameAllocator alloc = [&](uint32_t len) {
    ++allocator_calls;
    destination.resize(len);
    return destination.data();
  };

  constexpr uint32_t kSize = 1000;
  uint8_t header[4];
  rsf::StoreLE<uint32_t>(header, kSize);
  ASSERT_TRUE(client.WriteAll(header).ok());
  std::vector<uint8_t> payload(kSize);
  for (uint32_t i = 0; i < kSize; ++i) payload[i] = static_cast<uint8_t>(i);

  // Send the payload in three unequal chunks; the reader resumes into the
  // SAME allocator buffer each time (arena-direct receive depends on this).
  uint32_t length = 0;
  size_t sent = 0;
  for (const size_t chunk : {size_t{1}, size_t{499}, size_t{500}}) {
    ASSERT_TRUE(
        client.WriteAll({payload.data() + sent, chunk}).ok());
    sent += chunk;
    const bool last = sent == kSize;
    ASSERT_TRUE(WaitFor([&] {
      auto step = reader.Poll(server, alloc, &length);
      SFM_CHECK(step.ok());
      return last ? *step == FrameReader::Step::kFrame
                  : reader.MidFrame();
    }));
  }
  EXPECT_EQ(length, kSize);
  EXPECT_EQ(allocator_calls, 1);
  EXPECT_EQ(std::memcmp(destination.data(), payload.data(), kSize), 0);
}

TEST(FrameReader, MultiFrameBurstDrains) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  for (uint8_t i = 0; i < 3; ++i) {
    const uint8_t payload[] = {i};
    ASSERT_TRUE(WriteFrame(client, payload).ok());
  }
  FrameReader reader;
  std::vector<uint8_t> destination;
  const FrameAllocator alloc = [&](uint32_t len) {
    destination.resize(len == 0 ? 1 : len);
    return destination.data();
  };
  // One readiness event, three frames: Poll loops until kNeedMore.
  int frames = 0;
  uint32_t length = 0;
  ASSERT_TRUE(WaitFor([&] {
    for (;;) {
      auto step = reader.Poll(server, alloc, &length);
      SFM_CHECK(step.ok());
      if (*step == FrameReader::Step::kNeedMore) break;
      EXPECT_EQ(length, 1u);
      EXPECT_EQ(destination[0], frames);
      ++frames;
    }
    return frames == 3;
  }));
}

TEST(FrameReader, PeerCloseMidHeaderReportsUnavailable) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  const uint8_t partial[] = {9, 0};  // 2 of 4 header bytes
  ASSERT_TRUE(client.WriteAll(partial).ok());
  client.Close();
  FrameReader reader;
  uint32_t length = 0;
  const FrameAllocator alloc = [](uint32_t) -> uint8_t* { return nullptr; };
  ASSERT_TRUE(WaitFor([&] {
    auto step = reader.Poll(server, alloc, &length);
    if (step.ok()) return false;  // partial bytes may land first
    EXPECT_EQ(step.status().code(), StatusCode::kUnavailable);
    return true;
  }));
}

TEST(FrameReader, PeerCloseMidPayloadReportsUnavailable) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(server.SetNonBlocking(true).ok());
  uint8_t header[4];
  rsf::StoreLE<uint32_t>(header, 100);
  ASSERT_TRUE(client.WriteAll(header).ok());
  const uint8_t some[] = {1, 2, 3};
  ASSERT_TRUE(client.WriteAll(some).ok());
  client.Close();
  FrameReader reader;
  std::vector<uint8_t> destination;
  const FrameAllocator alloc = [&](uint32_t len) {
    destination.resize(len);
    return destination.data();
  };
  uint32_t length = 0;
  ASSERT_TRUE(WaitFor([&] {
    auto step = reader.Poll(server, alloc, &length);
    if (step.ok()) {
      EXPECT_EQ(*step, FrameReader::Step::kNeedMore);
      return false;
    }
    EXPECT_EQ(step.status().code(), StatusCode::kUnavailable);
    return true;
  }));
}

// ---- FrameWriter ----

TEST(FrameWriter, ShortWritesResumeUntilComplete) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(client.SetNonBlocking(true).ok());
  // 4 MB >> any socket buffer: the first Flush MUST stop short and leave
  // the frame pending; repeated flushes while the reader drains finish it.
  constexpr uint32_t kSize = 4 * 1024 * 1024;
  auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[kSize]);
  for (uint32_t i = 0; i < kSize; ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  FrameWriter writer;
  EXPECT_FALSE(writer.Enqueue(payload, kSize));
  ASSERT_TRUE(writer.Flush(client).ok());
  EXPECT_TRUE(writer.HasPending());  // partial write happened

  std::thread drainer([&, srv = &server] {
    std::vector<uint8_t> received;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    *srv,
                    [&](uint32_t len) {
                      received.resize(len);
                      return received.data();
                    },
                    &length)
                    .ok());
    EXPECT_EQ(length, kSize);
    EXPECT_EQ(std::memcmp(received.data(), payload.get(), kSize), 0);
  });
  while (writer.HasPending()) {
    ASSERT_TRUE(writer.Flush(client).ok());
    if (writer.HasPending()) SleepForNanos(100'000);
  }
  drainer.join();
  EXPECT_EQ(writer.FramesWritten(), 1u);
}

TEST(FrameWriter, GathersBurstIntoFewSyscalls) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(client.SetNonBlocking(true).ok());
  FrameWriter writer;
  for (int i = 0; i < 8; ++i) {
    auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[16]);
    std::memset(payload.get(), i, 16);
    writer.Enqueue(std::move(payload), 16);
  }
  const uint64_t before = WriteSyscallCount();
  ASSERT_TRUE(writer.Flush(client).ok());
  EXPECT_FALSE(writer.HasPending());  // 160 bytes always fit
  // 8 frames (16 iovecs) within the gather window: one sendmsg.
  EXPECT_EQ(WriteSyscallCount() - before, 1u);
  EXPECT_EQ(writer.FramesWritten(), 8u);
}

TEST(FrameWriter, DropOldestEvictsQueuedNotInFlight) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(client.SetNonBlocking(true).ok());
  // Wedge a large frame partially onto the wire.
  constexpr uint32_t kBig = 8 * 1024 * 1024;
  auto big = std::shared_ptr<uint8_t[]>(new uint8_t[kBig]);
  std::memset(big.get(), 0xAA, kBig);
  FrameWriter writer;
  writer.Enqueue(big, kBig);
  ASSERT_TRUE(writer.Flush(client).ok());
  ASSERT_TRUE(writer.HasPending());

  // Queue two more behind it with max_pending = 2: the in-flight front
  // frame is never the eviction victim — the oldest QUEUED frame is.
  auto second = std::shared_ptr<uint8_t[]>(new uint8_t[1]);
  second[0] = 2;
  auto third = std::shared_ptr<uint8_t[]>(new uint8_t[1]);
  third[0] = 3;
  EXPECT_FALSE(writer.Enqueue(second, 1, 2));  // fills to capacity
  EXPECT_TRUE(writer.Enqueue(third, 1, 2));    // evicts `second`
  EXPECT_EQ(writer.PendingFrames(), 2u);       // big (partial) + third

  std::thread drainer([&, srv = &server] {
    std::vector<uint8_t> received;
    uint32_t length = 0;
    for (int frame = 0; frame < 2; ++frame) {
      ASSERT_TRUE(ReadFrame(
                      *srv,
                      [&](uint32_t len) {
                        received.resize(len == 0 ? 1 : len);
                        return received.data();
                      },
                      &length)
                      .ok());
    }
    // The surviving small frame is `third`; `second` never hit the wire.
    EXPECT_EQ(length, 1u);
    EXPECT_EQ(received[0], 3);
  });
  while (writer.HasPending()) {
    ASSERT_TRUE(writer.Flush(client).ok());
    if (writer.HasPending()) SleepForNanos(100'000);
  }
  drainer.join();
}

TEST(FrameWriter, AdaptiveGatherBudgetGrowsWithDepthAndDecaysWhenShallow) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(client.SetNonBlocking(true).ok());
  FrameWriter writer;
  EXPECT_EQ(writer.GatherBudget(), kGatherFramesMin);

  const auto enqueue_burst = [&](int count) {
    for (int i = 0; i < count; ++i) {
      auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[8]);
      std::memset(payload.get(), i, 8);
      writer.Enqueue(std::move(payload), 8);
    }
  };
  std::thread drainer([srv = &server] {
    // Keep the peer's receive buffer from filling: drain and discard.
    uint8_t sink[4096];
    for (;;) {
      auto n = srv->ReadSome(sink);
      if (!n.ok()) return;
      if (*n == 0) SleepForNanos(100'000);
    }
  });
  ASSERT_TRUE(server.SetNonBlocking(true).ok());

  // Each deep flush doubles the budget (one adaptation per Flush call):
  // 8 → 16 → 32 → 64 (the RSF_SEND_BATCH_MAX default), and the syscall
  // count per 100-frame burst drops as the gather window widens.
  size_t expected_budget = kGatherFramesMin;
  uint64_t syscalls_first_burst = 0;
  uint64_t syscalls_last_burst = 0;
  for (int round = 0; round < 4; ++round) {
    enqueue_burst(100);
    const uint64_t before = WriteSyscallCount();
    while (writer.HasPending()) {
      ASSERT_TRUE(writer.Flush(client).ok());
      if (writer.HasPending()) SleepForNanos(100'000);
    }
    const uint64_t used = WriteSyscallCount() - before;
    if (round == 0) syscalls_first_burst = used;
    syscalls_last_burst = used;
    expected_budget = std::min<size_t>(expected_budget * 2, 64);
    EXPECT_EQ(writer.GatherBudget(), expected_budget) << "round " << round;
  }
  EXPECT_LT(syscalls_last_burst, syscalls_first_burst);

  // Shallow flushes walk the budget back down to the floor.
  for (int i = 0; i < 8 && writer.GatherBudget() > kGatherFramesMin; ++i) {
    enqueue_burst(1);
    ASSERT_TRUE(writer.Flush(client).ok());
  }
  EXPECT_EQ(writer.GatherBudget(), kGatherFramesMin);

  client.Close();
  server.ShutdownBoth();
  drainer.join();
}

// ---- stress (runs under the CI ThreadSanitizer preset) ----

TEST_P(PollerStress, MixedConnectDisconnectUnderLoad) {
  EventLoop& loop = *loop_;
  loop.Start();
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  ASSERT_TRUE(listener->SetNonBlocking(true).ok());

  // Server side, all loop-confined: accepted connections echo nothing, just
  // count the frames they see and drop on EOF.
  struct ServerConn {
    TcpConnection connection;
    FrameReader reader;
    std::vector<uint8_t> scratch;
  };
  auto conns = std::make_shared<std::vector<std::shared_ptr<ServerConn>>>();
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> conns_dropped{0};
  EventLoop* loop_ptr = &loop;

  std::function<void(std::shared_ptr<ServerConn>)> watch =
      [&, loop_ptr](std::shared_ptr<ServerConn> conn) {
        loop_ptr->Add(conn->connection.fd(), kEventReadable, [&, conn,
                                                              loop_ptr](
                                                                 uint32_t) {
          for (;;) {
            uint32_t length = 0;
            auto step = conn->reader.Poll(
                conn->connection,
                [&](uint32_t len) {
                  conn->scratch.resize(len == 0 ? 1 : len);
                  return conn->scratch.data();
                },
                &length);
            if (!step.ok()) {
              loop_ptr->Remove(conn->connection.fd());
              std::erase(*conns, conn);
              conns_dropped.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            if (*step == FrameReader::Step::kNeedMore) return;
            frames_received.fetch_add(1, std::memory_order_relaxed);
          }
        });
      };

  loop.RunSync([&] {
    loop.Add(listener->fd(), kEventReadable, [&](uint32_t) {
      for (;;) {
        TcpConnection conn;
        auto got = listener->TryAccept(&conn);
        if (!got.ok() || !*got) return;
        (void)conn.SetNonBlocking(true);
        auto server_conn = std::make_shared<ServerConn>();
        server_conn->connection = std::move(conn);
        conns->push_back(server_conn);
        watch(server_conn);
      }
    });
  });

  // Client side: several threads connect, push a few frames, disconnect,
  // repeat — churning registration/removal while frames are in flight.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  constexpr int kFramesPerConn = 5;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> frames_sent{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, port = listener->port()] {
      for (int round = 0; round < kRounds; ++round) {
        auto conn = TcpConnection::Connect("127.0.0.1", port);
        if (!conn.ok()) continue;  // transient accept-queue pressure
        std::vector<uint8_t> payload(64, static_cast<uint8_t>(round));
        for (int i = 0; i < kFramesPerConn; ++i) {
          if (!WriteFrame(*conn, payload).ok()) break;
          frames_sent.fetch_add(1, std::memory_order_relaxed);
        }
        conn->ShutdownBoth();
      }
    });
  }
  for (auto& client : clients) client.join();

  // Every sent frame arrives (orderly shutdown flushes the stream), and
  // every accepted connection eventually drops.
  ASSERT_TRUE(WaitFor([&] {
    return frames_received.load(std::memory_order_relaxed) >=
           frames_sent.load(std::memory_order_relaxed);
  }));
  ASSERT_TRUE(WaitFor([&] {
    bool empty = false;
    loop.RunSync([&] { empty = conns->empty(); });
    return empty;
  }));
  EXPECT_EQ(frames_received.load(), frames_sent.load());
  loop.RunSync([&] { loop.Remove(listener->fd()); });
  loop.Stop();
}

}  // namespace
}  // namespace rsf::net
