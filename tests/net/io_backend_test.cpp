// Tests for the IoBackend seam itself (net/io_backend.h): backend
// selection and the forced-failure fallback path, the epoll/uring
// capability surface, and — the acceptance test for this layer — a
// counter-based proof that the uring backend batches transport syscalls
// instead of us inferring it from latency.  The formal 256-link × 4×
// criterion runs in bench/ablation_connections; here a smaller fleet
// proves the same property inside the test suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/log.h"
#include "backend_param.h"
#include "net/io_backend.h"
#include "net/link.h"
#include "net/poller.h"
#include "net/socket.h"

namespace rsf::net {
namespace {

// Spins until `predicate` holds or ~5 s pass.
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 5000; ++i) {
    if (predicate()) return true;
    SleepForNanos(1'000'000);
  }
  return predicate();
}

/// Scoped setenv/unsetenv (tests must not leak env into each other).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(IoBackendSelection, EpollIsTheDefault) {
  ScopedEnv env("RSF_IO_BACKEND", "epoll");
  auto backend = MakeIoBackend(ResolveIoBackendKind());
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "epoll");
  EXPECT_FALSE(backend->SupportsSubmission());
}

TEST(IoBackendSelection, ForcedUnavailableFallsBackToWorkingEpollLoop) {
  // The acceptance-criteria fallback path: RSF_IO_BACKEND=auto on a host
  // where io_uring_setup fails (seccomp, old kernel) must degrade to a
  // fully functional epoll loop — not crash, not dead-loop.  The force
  // hook stands in for the real refusal on capable hosts.
  ScopedEnv force("RSF_URING_FORCE_UNAVAILABLE", "1");
  {
    ScopedEnv env("RSF_IO_BACKEND", "auto");
    EXPECT_EQ(ResolveIoBackendKind(), IoBackendKind::kEpoll);
  }
  {
    ScopedEnv env("RSF_IO_BACKEND", "uring");
    EXPECT_EQ(ResolveIoBackendKind(), IoBackendKind::kEpoll);
  }
  // An explicit kUring construction request also degrades (and the loop
  // it yields actually dispatches I/O).
  EventLoop loop(IoBackendKind::kUring);
  EXPECT_STREQ(loop.backend_name(), "epoll");
  loop.Start();
  std::atomic<bool> ran{false};
  ASSERT_TRUE(loop.Post([&] { ran.store(true); }));
  ASSERT_TRUE(WaitFor([&] { return ran.load(); }));
  loop.Stop();
}

TEST(IoBackendSelection, InvalidEnvValueDegradesToEpoll) {
  ScopedEnv env("RSF_IO_BACKEND", "iocp");
  EXPECT_EQ(ResolveIoBackendKind(), IoBackendKind::kEpoll);
}

TEST(IoBackendSelection, UringWhenAvailable) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable on this host; selection test "
                    "covered by the fallback cases";
  }
  ScopedEnv env("RSF_IO_BACKEND", "auto");
  EXPECT_EQ(ResolveIoBackendKind(), IoBackendKind::kUring);
  auto backend = MakeIoBackend(IoBackendKind::kUring);
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->name(), "uring");
}

class IoBackendLoop : public BackendParamTest {};
RSF_INSTANTIATE_BACKEND_SUITE(IoBackendLoop);

TEST_P(IoBackendLoop, ReactorAssignsLeastLoadedLoop) {
  // Two loops, three links: the third must land on whichever loop the
  // first close vacated — live-link counts, not blind rotation.
  EventLoop a(GetParam());
  EventLoop b(GetParam());
  a.Start();
  b.Start();
  EXPECT_EQ(a.LiveLinks(), 0u);
  a.NoteLinkBound();
  a.NoteLinkBound();
  b.NoteLinkBound();
  EXPECT_EQ(a.LiveLinks(), 2u);
  EXPECT_EQ(b.LiveLinks(), 1u);
  a.NoteLinkClosed();
  EXPECT_EQ(a.LiveLinks(), 1u);
  a.Stop();
  b.Stop();
}

/// One echo-less pub/sub pair: a server-role link that sends frames and a
/// client-role link that receives them, both on the same loop.
struct LinkPair {
  std::shared_ptr<Link> sender;
  std::shared_ptr<Link> receiver;
  std::atomic<int> received{0};
  std::vector<uint8_t> buf;
};

TEST_P(IoBackendLoop, SubmissionBatchingCutsSyscallsPerDelivery) {
  // The shim-counter proof, in miniature: 32 sender→receiver pairs on one
  // loop, several stop-and-wait delivery rounds, syscalls differenced
  // around the steady state.  Epoll pays sendmsg + recv(s) + an
  // epoll_wait share per delivery (≈3-5); uring batches every staged SQE
  // into one enter per loop turn, so its transport syscalls per delivered
  // frame must come in well under half of epoll's — and under 2.0
  // absolute.  (The 256-link ≥4× acceptance run lives in
  // bench/ablation_connections, where fleets are big enough to amortize
  // the turn.)
  constexpr int kPairs = 32;
  constexpr int kRounds = 20;
  constexpr uint32_t kPayload = 512;

  EventLoop& loop = *loop_;
  loop.Start();
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());

  std::vector<std::unique_ptr<LinkPair>> pairs;
  std::atomic<int> established{0};
  for (int i = 0; i < kPairs; ++i) {
    auto pair = std::make_unique<LinkPair>();
    LinkPair* raw = pair.get();

    Link::Callbacks client_cb;
    client_cb.make_handshake_request = [] {
      return std::vector<uint8_t>{'h', 'i'};
    };
    client_cb.on_handshake_reply = [](const uint8_t*, uint32_t length) {
      return length > 0;
    };
    client_cb.alloc = [raw](uint32_t length) {
      raw->buf.resize(length == 0 ? 1 : length);
      return raw->buf.data();
    };
    client_cb.on_frame = [raw](uint32_t) { raw->received.fetch_add(1); };
    client_cb.on_established = [&established](const std::shared_ptr<Link>&) {
      established.fetch_add(1);
    };
    pair->receiver = Link::Dial("127.0.0.1", listener->port(), &loop,
                                Link::Options{}, std::move(client_cb));

    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    Link::Callbacks server_cb;
    server_cb.on_handshake_request = [](const uint8_t*, uint32_t,
                                        std::vector<uint8_t>* reply) {
      *reply = {'o', 'k'};
      return true;
    };
    server_cb.on_established = [&established](const std::shared_ptr<Link>&) {
      established.fetch_add(1);
    };
    pair->sender = Link::Accepted(*std::move(conn), &loop, Link::Options{},
                                  std::move(server_cb));
    pairs.push_back(std::move(pair));
  }
  ASSERT_TRUE(WaitFor([&] { return established.load() == 2 * kPairs; }));

  // Warm-up round (arena/adaptive state), then measure.
  const auto run_round = [&](int round) {
    for (auto& pair : pairs) {
      auto payload = std::shared_ptr<uint8_t[]>(new uint8_t[kPayload]);
      std::memset(payload.get(), round, kPayload);
      EXPECT_FALSE(pair->sender->EnqueueFrame(std::move(payload), kPayload));
      loop.RunInLoop([link = pair->sender] { link->FlushOnLoop(); });
    }
    ASSERT_TRUE(WaitFor([&] {
      for (auto& pair : pairs) {
        if (pair->received.load() < round + 1) return false;
      }
      return true;
    }));
  };
  run_round(0);

  const IoSyscallCounters before = GlobalIoCounters();
  for (int round = 1; round < kRounds; ++round) run_round(round);
  const IoSyscallCounters after = GlobalIoCounters();

  const double deliveries = static_cast<double>(kPairs) * (kRounds - 1);
  const double syscalls =
      static_cast<double>(after.TotalSyscalls() - before.TotalSyscalls());
  const double per_delivery = syscalls / deliveries;
  RSF_INFO("backend %s: %.2f transport syscalls per delivered frame "
           "(enter %llu, epoll_wait %llu, sendmsg %llu, recv %llu)",
           loop.backend_name(), per_delivery,
           static_cast<unsigned long long>(after.enter_calls -
                                           before.enter_calls),
           static_cast<unsigned long long>(after.epoll_waits -
                                           before.epoll_waits),
           static_cast<unsigned long long>(after.sendmsg_calls -
                                           before.sendmsg_calls),
           static_cast<unsigned long long>(after.recv_calls -
                                           before.recv_calls));

  if (GetParam() == IoBackendKind::kUring) {
    // Submission mode: no sendmsg/recv syscalls at all on the data path,
    // and the enters amortize across the fleet.
    EXPECT_EQ(after.sendmsg_calls, before.sendmsg_calls);
    EXPECT_EQ(after.recv_calls, before.recv_calls);
    EXPECT_LT(per_delivery, 2.0);
  } else {
    // Readiness mode pays per-link syscalls: at least one sendmsg and one
    // recv per delivered frame.
    EXPECT_GE(per_delivery, 2.0);
  }

  for (auto& pair : pairs) {
    pair->sender->CloseSync();
    pair->receiver->CloseSync();
  }
  loop.Stop();
}

}  // namespace
}  // namespace rsf::net
