// Backend parameterization for the net-layer tests: every reactor/link
// suite runs once per IoBackendKind, so the io_uring submission paths get
// the same coverage as epoll.  Uring cases skip — with a logged reason,
// never a silent pass — on hosts where the setup probe fails (seccomp,
// pre-5.1 kernel).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/io_backend.h"
#include "net/poller.h"

namespace rsf::net {

/// Skip-only base: suites that build their own loops (LinkHarness) derive
/// from this and read GetParam() themselves.
class BackendSkipTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kUring && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this host (io_uring_setup "
                      "probe failed — seccomp or pre-5.1 kernel); uring "
                      "backend cases skipped";
    }
  }
};

/// Skip + a ready-made loop on the parameterized backend.
class BackendParamTest : public BackendSkipTest {
 protected:
  void SetUp() override {
    BackendSkipTest::SetUp();
    if (IsSkipped()) return;
    loop_ = std::make_unique<EventLoop>(GetParam());
  }
  void TearDown() override {
    if (loop_ != nullptr) loop_->Stop();
  }

  std::unique_ptr<EventLoop> loop_;
};

inline std::string BackendParamName(
    const ::testing::TestParamInfo<IoBackendKind>& info) {
  return IoBackendKindName(info.param);
}

#define RSF_INSTANTIATE_BACKEND_SUITE(suite)                             \
  INSTANTIATE_TEST_SUITE_P(Backends, suite,                              \
                           ::testing::Values(IoBackendKind::kEpoll,      \
                                             IoBackendKind::kUring),     \
                           BackendParamName)

}  // namespace rsf::net
