// Tests for the network substrate: RAII sockets, framing (including the
// allocator hook the serialization-free receive path depends on), and the
// simulated link model used by the inter-machine experiment.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>

#include <cstring>
#include <thread>

#include "common/clock.h"
#include "common/endian.h"
#include "net/framing.h"
#include "net/sim_link.h"
#include "net/socket.h"

namespace rsf::net {
namespace {

std::pair<TcpConnection, TcpConnection> MakePair() {
  auto listener = TcpListener::Listen(0);
  SFM_CHECK(listener.ok());
  TcpConnection server;
  std::thread acceptor([&] {
    auto conn = listener->Accept();
    SFM_CHECK(conn.ok());
    server = *std::move(conn);
  });
  auto client = TcpConnection::Connect("127.0.0.1", listener->port());
  SFM_CHECK(client.ok());
  acceptor.join();
  return {*std::move(client), std::move(server)};
}

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener->port(), 0);
}

TEST(Socket, RoundTripBytes) {
  auto [client, server] = MakePair();
  const uint8_t payload[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(client.WriteAll(payload).ok());
  uint8_t received[5] = {};
  ASSERT_TRUE(server.ReadExact(received).ok());
  EXPECT_EQ(std::memcmp(payload, received, 5), 0);
}

TEST(Socket, ReadAfterPeerCloseReportsUnavailable) {
  auto [client, server] = MakePair();
  client.Close();
  uint8_t byte;
  EXPECT_EQ(server.ReadExact({&byte, 1}).code(), StatusCode::kUnavailable);
}

TEST(Socket, ShutdownUnblocksReader) {
  auto [client, server] = MakePair();
  std::thread reader([&] {
    uint8_t byte;
    EXPECT_FALSE(server.ReadExact({&byte, 1}).ok());
  });
  SleepForNanos(20'000'000);
  server.ShutdownBoth();
  reader.join();
  (void)client;
}

TEST(Socket, ConnectToBadAddressFails) {
  EXPECT_FALSE(TcpConnection::Connect("not-an-ip", 1234).ok());
}

TEST(Socket, FdGuardMoveSemantics) {
  FdGuard a(100000);  // not a real fd; never dereferenced before release
  FdGuard b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.fd(), 100000);
  EXPECT_EQ(b.Release(), 100000);
  EXPECT_FALSE(b.valid());
}

TEST(Socket, WritevAllGathersManyIovecs) {
  auto [client, server] = MakePair();
  // 64 chunks with distinct fill values; total 1 MB so the socket buffer
  // fills and WritevAll must resume mid-iovec after partial writes.
  constexpr size_t kChunks = 64;
  constexpr size_t kChunkSize = 16 * 1024;
  std::vector<std::vector<uint8_t>> chunks(kChunks);
  std::vector<iovec> iov(kChunks);
  for (size_t i = 0; i < kChunks; ++i) {
    chunks[i].assign(kChunkSize, static_cast<uint8_t>(i + 1));
    iov[i] = {chunks[i].data(), chunks[i].size()};
  }
  std::thread writer([&] { ASSERT_TRUE(client.WritevAll(iov).ok()); });
  std::vector<uint8_t> received(kChunks * kChunkSize);
  ASSERT_TRUE(server.ReadExact(received).ok());
  writer.join();
  for (size_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(received[i * kChunkSize], static_cast<uint8_t>(i + 1)) << i;
    EXPECT_EQ(received[(i + 1) * kChunkSize - 1], static_cast<uint8_t>(i + 1))
        << i;
  }
}

TEST(Socket, WritevAllSkipsEmptyIovecs) {
  auto [client, server] = MakePair();
  uint8_t a[] = {1, 2};
  uint8_t b[] = {3};
  const iovec iov[] = {{nullptr, 0}, {a, 2}, {nullptr, 0}, {b, 1}};
  ASSERT_TRUE(client.WritevAll(iov).ok());
  uint8_t received[3] = {};
  ASSERT_TRUE(server.ReadExact(received).ok());
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[2], 3);

  // An all-empty gather is a no-op, not a syscall.
  const uint64_t before = WriteSyscallCount();
  const iovec empty[] = {{nullptr, 0}, {nullptr, 0}};
  ASSERT_TRUE(client.WritevAll(empty).ok());
  EXPECT_EQ(WriteSyscallCount(), before);
}

TEST(Framing, WriteFrameCostsOneSyscall) {
  auto [client, server] = MakePair();
  // Small enough that the socket buffer always has room: the length prefix
  // and payload must go out in ONE gathered syscall (the seed paid two).
  std::vector<uint8_t> payload(1024, 0x42);
  const uint64_t before = WriteSyscallCount();
  ASSERT_TRUE(WriteFrame(client, payload).ok());
  EXPECT_EQ(WriteSyscallCount() - before, 1u);

  std::vector<uint8_t> received(payload.size());
  uint32_t length = 0;
  ASSERT_TRUE(
      ReadFrame(server, [&](uint32_t) { return received.data(); }, &length)
          .ok());
  EXPECT_EQ(length, payload.size());
  EXPECT_EQ(received[0], 0x42);
}

TEST(Framing, ScatteredWriteCostsOneSyscall) {
  auto [client, server] = MakePair();
  const std::vector<uint8_t> head(16, 0x01);
  const std::vector<uint8_t> body(2048, 0x02);
  const uint64_t before = WriteSyscallCount();
  ASSERT_TRUE(WriteFrameScattered(client, head, body).ok());
  EXPECT_EQ(WriteSyscallCount() - before, 1u);

  std::vector<uint8_t> received(head.size() + body.size());
  uint32_t length = 0;
  ASSERT_TRUE(
      ReadFrame(server, [&](uint32_t) { return received.data(); }, &length)
          .ok());
  ASSERT_EQ(length, head.size() + body.size());
  EXPECT_EQ(received[0], 0x01);
  EXPECT_EQ(received[head.size()], 0x02);
}

TEST(Framing, RoundTripSmallAndLarge) {
  auto [client, server] = MakePair();
  for (const size_t size : {size_t{0}, size_t{1}, size_t{100000}}) {
    std::vector<uint8_t> payload(size, 0xAB);
    std::thread writer(
        [&] { ASSERT_TRUE(WriteFrame(client, payload).ok()); });
    std::vector<uint8_t> received;
    uint32_t length = 0;
    ASSERT_TRUE(ReadFrame(
                    server,
                    [&](uint32_t len) {
                      received.resize(len == 0 ? 1 : len);
                      return received.data();
                    },
                    &length)
                    .ok());
    writer.join();
    EXPECT_EQ(length, size);
    if (size > 0) {
      EXPECT_EQ(received[size - 1], 0xAB);
    }
  }
}

TEST(Framing, ScatteredWriteArrivesAsOneFrame) {
  auto [client, server] = MakePair();
  const std::vector<uint8_t> head = {1, 2, 3};
  const std::vector<uint8_t> body = {4, 5, 6, 7};
  std::thread writer(
      [&] { ASSERT_TRUE(WriteFrameScattered(client, head, body).ok()); });
  std::vector<uint8_t> received(16);
  uint32_t length = 0;
  ASSERT_TRUE(
      ReadFrame(server, [&](uint32_t) { return received.data(); }, &length)
          .ok());
  writer.join();
  ASSERT_EQ(length, 7u);
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[6], 7);
}

TEST(Framing, OversizedLengthRejected) {
  auto [client, server] = MakePair();
  uint8_t evil[4];
  rsf::StoreLE<uint32_t>(evil, kMaxFramePayload + 1);
  ASSERT_TRUE(client.WriteAll(evil).ok());
  uint32_t length = 0;
  EXPECT_EQ(ReadFrame(server, [&](uint32_t) -> uint8_t* { return nullptr; },
                      &length)
                .code(),
            StatusCode::kOutOfRange);
}

TEST(Framing, NullAllocatorRejected) {
  auto [client, server] = MakePair();
  const std::vector<uint8_t> payload = {1};
  std::thread writer([&] { (void)WriteFrame(client, payload); });
  uint32_t length = 0;
  EXPECT_EQ(ReadFrame(server, [](uint32_t) -> uint8_t* { return nullptr; },
                      &length)
                .code(),
            StatusCode::kResourceExhausted);
  writer.join();
}

// Audits the one-tunable socket-option contract: both ends of a transport
// connection — the accepted side AND the dialed side — get TCP_NODELAY and
// SO_RCVBUF/SO_SNDBUF derived from kSocketBufferBytes.  (The kernel at
// least doubles requested buffer sizes for bookkeeping, so the assertion
// is >=, and requires net.core.{r,w}mem_max >= kSocketBufferBytes.)
void ExpectTransportOptions(TcpConnection& conn) {
  auto nodelay = conn.GetIntOption(IPPROTO_TCP, TCP_NODELAY);
  ASSERT_TRUE(nodelay.ok());
  EXPECT_NE(*nodelay, 0);
  auto rcvbuf = conn.GetIntOption(SOL_SOCKET, SO_RCVBUF);
  ASSERT_TRUE(rcvbuf.ok());
  EXPECT_GE(*rcvbuf, kSocketBufferBytes);
  auto sndbuf = conn.GetIntOption(SOL_SOCKET, SO_SNDBUF);
  ASSERT_TRUE(sndbuf.ok());
  EXPECT_GE(*sndbuf, kSocketBufferBytes);
}

TEST(SocketOptions, AppliedToAcceptedConnection) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(ApplyTransportSocketOptions(server).ok());
  ExpectTransportOptions(server);
}

TEST(SocketOptions, AppliedToDialedConnection) {
  auto [client, server] = MakePair();
  ASSERT_TRUE(ApplyTransportSocketOptions(client).ok());
  ExpectTransportOptions(client);
}

TEST(SimLink, WireTimeMatchesBandwidth) {
  SimLink link(LinkConfig{1e9, 0});  // 1 Gbps
  EXPECT_EQ(link.WireTimeNanos(125), 1000u);        // 1000 bits
  EXPECT_EQ(link.WireTimeNanos(1250000), 10000000u);  // 10 Mbit -> 10 ms
  SimLink unshaped(LinkConfig::Loopback());
  EXPECT_EQ(unshaped.WireTimeNanos(1000000), 0u);
}

TEST(SimLink, PropagationAddsConstantDelay) {
  SimLink link(LinkConfig{0, 50'000});
  EXPECT_EQ(link.DelayFor(100, 1'000'000), 50'000u);
}

TEST(SimLink, BackToBackFramesQueue) {
  // Two frames sent at the same instant: the second waits for the first's
  // wire time (store-and-forward serialization).
  SimLink link(LinkConfig{1e9, 0});
  const uint64_t now = 1'000'000'000;
  const uint64_t first = link.DelayFor(125'000, now);   // 1 ms wire
  const uint64_t second = link.DelayFor(125'000, now);  // queued behind
  EXPECT_EQ(first, 1'000'000u);
  EXPECT_EQ(second, 2'000'000u);
}

TEST(SimLink, IdleLinkDoesNotAccumulate) {
  SimLink link(LinkConfig{1e9, 0});
  (void)link.DelayFor(125'000, 0);
  // Much later, the link is idle again: only the wire time applies.
  EXPECT_EQ(link.DelayFor(125'000, 1'000'000'000), 1'000'000u);
}

TEST(SimLink, TenGigEPresetMatchesPaperTestbed) {
  const auto config = LinkConfig::TenGigE();
  SimLink link(config);
  // A 6MB image on 10 GbE: ~4.8 ms of wire time + 30 us propagation.
  const uint64_t delay = link.DelayFor(6 * 1024 * 1024, 0);
  EXPECT_NEAR(static_cast<double>(delay), 5.06e6, 0.2e6);
}

}  // namespace
}  // namespace rsf::net
