// Unit tests for the common substrate: status/result, logging, time, MD5,
// string helpers, statistics, and the concurrent queue.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/concurrent_queue.h"
#include "common/endian.h"
#include "common/log.h"
#include "common/md5.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"

namespace rsf {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err = InvalidArgumentError("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = *std::move(r);
  EXPECT_EQ(moved, "payload");
}

TEST(Log, SinkCapturesAtOrAboveLevel) {
  std::vector<std::string> captured;
  SetLogSink([&](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  const LogLevel previous = SetLogLevel(LogLevel::kWarn);
  RSF_INFO("hidden %d", 1);
  RSF_WARN("visible %d", 2);
  RSF_ERROR("also visible");
  SetLogLevel(previous);
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "visible 2");
}

TEST(Log, ScopedLevelRestores) {
  const LogLevel before = GetLogLevel();
  {
    ScopedLogLevel scoped(LogLevel::kOff);
    EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
  }
  EXPECT_EQ(GetLogLevel(), before);
}

TEST(Clock, TimeRoundTripsNanos) {
  const Time t = Time::FromNanos(1234567890123456789ull);
  EXPECT_EQ(t.ToNanos(), 1234567890123456789ull);
  EXPECT_EQ(t.sec, 1234567890u);
  EXPECT_EQ(t.nsec, 123456789u);
}

TEST(Clock, NowIsMonotonicEnough) {
  const Time a = Time::Now();
  SleepForNanos(2'000'000);
  const Time b = Time::Now();
  EXPECT_LT(a, b);
  EXPECT_GE(ElapsedSince(a), 1'000'000ull);
}

TEST(Clock, RatePacesLoop) {
  Rate rate(200.0);  // 5 ms period
  const Stopwatch watch;
  for (int i = 0; i < 5; ++i) rate.Sleep();
  EXPECT_GE(watch.ElapsedNanos(), 20'000'000ull);  // >= 4 full periods
}

TEST(Clock, RateReportsOverrun) {
  Rate rate(1000.0);  // 1 ms
  SleepForNanos(5'000'000);
  EXPECT_FALSE(rate.Sleep());  // overran
  EXPECT_TRUE(rate.Sleep());   // schedule re-anchored
}

TEST(Md5, Rfc1321TestVectors) {
  EXPECT_EQ(Md5::HexDigest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexDigest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::HexDigest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexDigest("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::HexDigest("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::HexDigest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01"
                     "23456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::HexDigest(std::string(80, '1') /* len > one block */),
            Md5::HexDigest(std::string(80, '1')));
}

TEST(Md5, IncrementalMatchesOneShot) {
  Md5 md5;
  md5.Update("hello ");
  md5.Update("world");
  uint8_t digest[16];
  md5.Final(digest);

  Md5 oneshot;
  oneshot.Update("hello world");
  uint8_t expected[16];
  oneshot.Final(expected);
  EXPECT_EQ(std::memcmp(digest, expected, 16), 0);
}

TEST(Endian, LoadStoreRoundTrip) {
  uint8_t buffer[8];
  StoreLE<uint32_t>(buffer, 0xDEADBEEFu);
  EXPECT_EQ(buffer[0], 0xEF);
  EXPECT_EQ(LoadLE<uint32_t>(buffer), 0xDEADBEEFu);
  StoreLE<double>(buffer, 3.25);
  EXPECT_DOUBLE_EQ(LoadLE<double>(buffer), 3.25);
}

TEST(Endian, ByteSwap) {
  EXPECT_EQ(ByteSwap<uint16_t>(0x1234), 0x3412);
  EXPECT_EQ(ByteSwap<uint32_t>(0x12345678u), 0x78563412u);
  EXPECT_EQ(ByteSwap<uint64_t>(0x0102030405060708ull), 0x0807060504030201ull);
}

TEST(StringUtil, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitWhitespace("  a\t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"x", "y", "z"}, "::"), "x::y::z");
}

TEST(StringUtil, StripAndPredicates) {
  EXPECT_EQ(Strip("  hi \t"), "hi");
  EXPECT_TRUE(StartsWith("sensor_msgs/Image", "sensor_"));
  EXPECT_TRUE(EndsWith("Image.msg", ".msg"));
  EXPECT_TRUE(IsIdentifier("frame_id2"));
  EXPECT_FALSE(IsIdentifier("2frame"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(StringUtil, ReplaceAllAndHumanBytes) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(200 * 1024), "200 KB");
  EXPECT_EQ(HumanBytes(6 * 1024 * 1024), "6.0 MB");
}

TEST(Stats, OnlineMeanAndStddev) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, Percentiles) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.AddMillis(i);
  EXPECT_NEAR(recorder.Percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(recorder.Percentile(0.99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(1.0), 100.0);
}

TEST(ConcurrentQueue, FifoOrder) {
  ConcurrentQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.TryPop(), 3);
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(ConcurrentQueue, DropOldestPolicy) {
  ConcurrentQueue<int> queue(2, QueueFullPolicy::kDropOldest);
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);  // evicts 1
  EXPECT_EQ(queue.DroppedCount(), 1u);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
}

TEST(ConcurrentQueue, RejectPolicy) {
  ConcurrentQueue<int> queue(1, QueueFullPolicy::kReject);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_FALSE(queue.Push(2));
}

TEST(ConcurrentQueue, ShutdownWakesBlockedPop) {
  ConcurrentQueue<int> queue;
  std::thread waiter([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  SleepForNanos(10'000'000);
  queue.Shutdown();
  waiter.join();
  EXPECT_FALSE(queue.Push(5)) << "push after shutdown must fail";
}

TEST(ConcurrentQueue, PopForTimesOut) {
  ConcurrentQueue<int> queue;
  const Stopwatch watch;
  EXPECT_FALSE(queue.PopFor(20'000'000).has_value());
  EXPECT_GE(watch.ElapsedNanos(), 15'000'000ull);
}

TEST(ConcurrentQueue, PopAllDrainsEverythingAtOnce) {
  ConcurrentQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  const auto batch = queue.PopAll();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[2], 3);
  EXPECT_TRUE(queue.Empty());
}

TEST(ConcurrentQueue, PopAllBlocksThenReturnsEmptyOnShutdown) {
  ConcurrentQueue<int> queue;
  std::thread waiter([&] {
    EXPECT_EQ(queue.PopAll().size(), 1u);  // woken by the push below
    EXPECT_TRUE(queue.PopAll().empty());   // woken by shutdown
  });
  SleepForNanos(10'000'000);
  queue.Push(7);
  SleepForNanos(10'000'000);
  queue.Shutdown();
  waiter.join();
}

TEST(ConcurrentQueue, PopAllUnblocksWaitingBoundedPushers) {
  ConcurrentQueue<int> queue(1, QueueFullPolicy::kBlock);
  queue.Push(1);
  std::thread pusher([&] { EXPECT_TRUE(queue.Push(2)); });  // blocks: full
  SleepForNanos(10'000'000);
  EXPECT_EQ(queue.PopAll().size(), 1u);  // drain must wake the pusher
  pusher.join();
  EXPECT_EQ(*queue.Pop(), 2);
}

TEST(ConcurrentQueue, ConcurrentProducersConsumers) {
  ConcurrentQueue<int> queue(1024, QueueFullPolicy::kBlock);
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) queue.Push(1);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.Pop()) sum.fetch_add(*v);
    });
  }
  for (int p = 0; p < 3; ++p) threads[p].join();
  while (!queue.Empty()) SleepForNanos(1'000'000);
  queue.Shutdown();
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(sum.load(), 3 * kPerProducer);
}

}  // namespace
}  // namespace rsf
