// Tests for the IDL parser, the spec registry (dependencies, MD5
// checksums), and the code generators (skeleton layout, emitted headers).
#include <gtest/gtest.h>

#include "gen/emitter.h"
#include "gen/layout.h"
#include "idl/parser.h"
#include "idl/registry.h"

namespace {

using namespace rsf::idl;

TEST(Parser, FieldsOfEveryShape) {
  const auto spec = ParseMessage("pkg", "Msg", R"(
# a comment
uint32 plain
string name
float64[] dynamic
int16[4] fixed
Header header
geometry_msgs/Point point
)");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->fields.size(), 6u);

  EXPECT_EQ(spec->fields[0].type.ToIdl(), "uint32");
  EXPECT_EQ(spec->fields[1].type.primitive, Primitive::kString);
  EXPECT_EQ(spec->fields[2].type.array, ArrayKind::kDynamic);
  EXPECT_EQ(spec->fields[3].type.array, ArrayKind::kFixed);
  EXPECT_EQ(spec->fields[3].type.fixed_size, 4u);
  // Bare Header is the ROS1 special case.
  EXPECT_EQ(spec->fields[4].type.MessageKey(), "std_msgs/Header");
  EXPECT_EQ(spec->fields[5].type.MessageKey(), "geometry_msgs/Point");
}

TEST(Parser, BareTypeResolvesToSamePackage) {
  const auto spec = ParseMessage("sensor_msgs", "PointCloud",
                                 "ChannelFloat32[] channels\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->fields[0].type.MessageKey(), "sensor_msgs/ChannelFloat32");
}

TEST(Parser, ByteAndCharAliases) {
  const auto spec = ParseMessage("p", "M", "byte b\nchar c\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->fields[0].type.primitive, Primitive::kInt8);
  EXPECT_EQ(spec->fields[1].type.primitive, Primitive::kUint8);
}

TEST(Parser, Constants) {
  const auto spec = ParseMessage("p", "M", R"(
uint8 FOO=1
int32 BAR=-7
string NAME=hello world
float32 RATE=2.5
uint8 value
)");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->constants.size(), 4u);
  EXPECT_EQ(spec->constants[0].name, "FOO");
  EXPECT_EQ(spec->constants[1].value_text, "-7");
  EXPECT_EQ(spec->constants[2].value_text, "hello world");
  ASSERT_EQ(spec->fields.size(), 1u);
}

TEST(Parser, ArenaCapacityPragma) {
  const auto spec =
      ParseMessage("p", "M", "# @arena_capacity: 8M\nuint8[] data\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->arena_capacity, 8u * 1024 * 1024);
}

TEST(Parser, ByteSizeSuffixes) {
  EXPECT_EQ(*ParseByteSize("4096"), 4096u);
  EXPECT_EQ(*ParseByteSize("64K"), 64u * 1024);
  EXPECT_EQ(*ParseByteSize("2M"), 2u * 1024 * 1024);
  EXPECT_EQ(*ParseByteSize("1G"), 1024u * 1024 * 1024);
  EXPECT_FALSE(ParseByteSize("12Q").ok());
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("4Kx").ok());
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_FALSE(ParseMessage("p", "M", "uint32\n").ok());
  EXPECT_FALSE(ParseMessage("p", "M", "uint32 a b\n").ok());
  EXPECT_FALSE(ParseMessage("p", "M", "uint32[ x\n").ok());
  EXPECT_FALSE(ParseMessage("p", "M", "uint32[0] x\n").ok());
  EXPECT_FALSE(ParseMessage("p", "M", "pkg/Type/Extra x\n").ok());
  EXPECT_FALSE(ParseMessage("bad pkg", "M", "uint32 x\n").ok());
}

SpecRegistry MakeRegistry() {
  SpecRegistry registry;
  SFM_CHECK(registry
                .Add(*ParseMessage("std_msgs", "Header",
                                   "uint32 seq\ntime stamp\nstring frame_id\n"))
                .ok());
  SFM_CHECK(registry
                .Add(*ParseMessage("sensor_msgs", "Image",
                                   "Header header\nuint32 height\n"
                                   "uint32 width\nstring encoding\n"
                                   "uint8 is_bigendian\nuint32 step\n"
                                   "uint8[] data\n"))
                .ok());
  return registry;
}

TEST(Registry, DuplicateRejected) {
  auto registry = MakeRegistry();
  EXPECT_EQ(registry.Add(*ParseMessage("std_msgs", "Header", "uint32 seq\n"))
                .code(),
            rsf::StatusCode::kAlreadyExists);
}

TEST(Registry, ValidateCatchesDanglingReference) {
  SpecRegistry registry;
  SFM_CHECK(
      registry.Add(*ParseMessage("a", "M", "b/Missing field\n")).ok());
  EXPECT_EQ(registry.ValidateReferences().code(),
            rsf::StatusCode::kNotFound);
}

TEST(Registry, TopologicalOrderPutsDependenciesFirst) {
  const auto registry = MakeRegistry();
  const auto order = registry.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  const auto pos = [&](const std::string& key) {
    return std::find(order->begin(), order->end(), key) - order->begin();
  };
  EXPECT_LT(pos("std_msgs/Header"), pos("sensor_msgs/Image"));
}

TEST(Registry, Md5MatchesRealRosForKnownTypes) {
  // Our canonicalization reproduces genmsg's checksums for real ROS1
  // definitions — verified against the published values.
  const auto registry = MakeRegistry();
  EXPECT_EQ(*registry.Md5For("std_msgs/Header"),
            "2176decaecbce78abc3b96ef049fabed");
  EXPECT_EQ(*registry.Md5For("sensor_msgs/Image"),
            "060021388200f6f0f447d0fcd9c64743");
}

TEST(Registry, Md5ChangesWithDefinition) {
  SpecRegistry a;
  SFM_CHECK(a.Add(*ParseMessage("p", "M", "uint32 x\n")).ok());
  SpecRegistry b;
  SFM_CHECK(b.Add(*ParseMessage("p", "M", "uint32 y\n")).ok());
  EXPECT_NE(*a.Md5For("p/M"), *b.Md5For("p/M"));
}

TEST(Layout, ImageSkeletonMatchesGeneratedStruct) {
  const auto registry = MakeRegistry();
  const auto layout = rsf::gen::ComputeSfmLayout(registry, "sensor_msgs/Image");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->size, 52u);  // asserted against sizeof in sfm tests
  EXPECT_EQ(layout->align, 4u);

  // Nested header fields are flattened with dotted names.
  ASSERT_GE(layout->fields.size(), 8u);
  EXPECT_EQ(layout->fields[0].name, "header.seq");
  EXPECT_EQ(layout->fields[2].name, "header.frame_id");
  EXPECT_TRUE(layout->fields[2].variable);
  EXPECT_EQ(layout->fields[2].offset, 12u);
}

TEST(Layout, AlignmentPaddingIsModelled) {
  SpecRegistry registry;
  SFM_CHECK(registry
                .Add(*ParseMessage("p", "M",
                                   "uint8 a\nfloat64 b\nuint8 c\n"))
                .ok());
  const auto layout = rsf::gen::ComputeSfmLayout(registry, "p/M");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->fields[1].offset, 8u);   // b aligned to 8
  EXPECT_EQ(layout->fields[2].offset, 16u);  // c after b
  EXPECT_EQ(layout->size, 24u);              // tail padding to align 8
  EXPECT_EQ(layout->align, 8u);
}

TEST(Layout, FixedArraysAreInline) {
  SpecRegistry registry;
  SFM_CHECK(registry.Add(*ParseMessage("p", "M", "float64[9] K\nuint8 z\n"))
                .ok());
  const auto layout = rsf::gen::ComputeSfmLayout(registry, "p/M");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->fields[0].size, 72u);
  EXPECT_EQ(layout->fields[1].offset, 72u);
}

TEST(Emitter, RegularHeaderShape) {
  const auto registry = MakeRegistry();
  const auto header = rsf::gen::EmitRegularHeader(registry, "sensor_msgs/Image");
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("struct Image {"), std::string::npos);
  EXPECT_NE(header->find("std::string encoding{};"), std::string::npos);
  EXPECT_NE(header->find("std::vector<uint8_t> data{};"), std::string::npos);
  EXPECT_NE(header->find("kIsSfmMessage = false"), std::string::npos);
  EXPECT_NE(header->find("060021388200f6f0f447d0fcd9c64743"),
            std::string::npos);
  EXPECT_NE(header->find("for_each_field"), std::string::npos);
}

TEST(Emitter, SfmHeaderShape) {
  const auto registry = MakeRegistry();
  const auto header = rsf::gen::EmitSfmHeader(registry, "sensor_msgs/Image");
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("::sfm::ManagedMessage<Image>"), std::string::npos);
  EXPECT_NE(header->find("::sfm::string encoding{};"), std::string::npos);
  EXPECT_NE(header->find("::sfm::vector<uint8_t> data{};"), std::string::npos);
  EXPECT_NE(header->find("TryWholeCopy"), std::string::npos);
  EXPECT_NE(header->find("static_assert(sizeof(Image) == 52"),
            std::string::npos);
  EXPECT_NE(header->find("kArenaCapacity"), std::string::npos);
}

TEST(Emitter, ConstantsAreEmitted) {
  SpecRegistry registry;
  SFM_CHECK(registry
                .Add(*ParseMessage("p", "M",
                                   "uint8 FLOAT32=7\nstring NAME=abc\n"
                                   "uint32 v\n"))
                .ok());
  const auto header = rsf::gen::EmitRegularHeader(registry, "p/M");
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("static constexpr uint8_t FLOAT32 = 7;"),
            std::string::npos);
  EXPECT_NE(header->find("static constexpr const char* NAME = \"abc\";"),
            std::string::npos);
}

}  // namespace
