// Tests for the full-tree generation path (what the build-time sfmgen run
// does): directory loading, output layout, and rewrite-only-when-changed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/emitter.h"
#include "idl/parser.h"
#include "idl/registry.h"

namespace {
namespace fs = std::filesystem;

class GenerateAllTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: parallel ctest runs each case in its own process
    // and concurrent SetUp/TearDown must not share a working tree.
    root_ = fs::path(::testing::TempDir()) /
            ("genall_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "msgs" / "demo_msgs");
    Write("msgs/demo_msgs/Header.msg",
          "uint32 seq\ntime stamp\nstring frame_id\n");
    Write("msgs/demo_msgs/Scan.msg",
          "# @arena_capacity: 128K\nHeader header\nfloat32[] ranges\n");
  }
  void TearDown() override { fs::remove_all(root_); }

  void Write(const std::string& relative, const std::string& content) {
    std::ofstream out(root_ / relative);
    out << content;
  }

  std::string Read(const std::string& relative) {
    std::ifstream in(root_ / relative);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path root_;
};

TEST_F(GenerateAllTest, EmitsBothVariantsForEveryMessage) {
  rsf::idl::SpecRegistry registry;
  // Note: bare "Header" in Scan.msg resolves to std_msgs/Header (the ROS1
  // special case), which is absent here — provide it.
  Write("msgs/demo_msgs/Scan.msg",
        "# @arena_capacity: 128K\ndemo_msgs/Header header\n"
        "float32[] ranges\n");
  ASSERT_TRUE(registry.LoadDirectory((root_ / "msgs").string()).ok());
  ASSERT_TRUE(
      rsf::gen::GenerateAll(registry, (root_ / "out").string()).ok());

  EXPECT_TRUE(fs::exists(root_ / "out" / "demo_msgs" / "Header.h"));
  EXPECT_TRUE(fs::exists(root_ / "out" / "demo_msgs" / "Scan.h"));
  EXPECT_TRUE(fs::exists(root_ / "out" / "demo_msgs" / "sfm" / "Header.h"));
  EXPECT_TRUE(fs::exists(root_ / "out" / "demo_msgs" / "sfm" / "Scan.h"));

  const std::string sfm_scan = Read("out/demo_msgs/sfm/Scan.h");
  EXPECT_NE(sfm_scan.find("kArenaCapacity = 131072"), std::string::npos);
  EXPECT_NE(sfm_scan.find("::demo_msgs::sfm::Header header{};"),
            std::string::npos);
}

TEST_F(GenerateAllTest, UnchangedFilesKeepTheirTimestamp) {
  rsf::idl::SpecRegistry registry;
  Write("msgs/demo_msgs/Scan.msg", "demo_msgs/Header header\n");
  ASSERT_TRUE(registry.LoadDirectory((root_ / "msgs").string()).ok());
  const std::string out_dir = (root_ / "out").string();
  ASSERT_TRUE(rsf::gen::GenerateAll(registry, out_dir).ok());

  const auto path = root_ / "out" / "demo_msgs" / "Header.h";
  const auto first_write = fs::last_write_time(path);
  ASSERT_TRUE(rsf::gen::GenerateAll(registry, out_dir).ok());
  EXPECT_EQ(fs::last_write_time(path), first_write)
      << "unchanged content must not be rewritten (ninja hygiene)";
}

TEST_F(GenerateAllTest, DanglingReferenceFailsLoudly) {
  rsf::idl::SpecRegistry registry;
  Write("msgs/demo_msgs/Bad.msg", "other_msgs/Missing field\n");
  ASSERT_TRUE(registry.LoadDirectory((root_ / "msgs").string()).ok());
  EXPECT_FALSE(
      rsf::gen::GenerateAll(registry, (root_ / "out").string()).ok());
}

TEST_F(GenerateAllTest, LoadDirectoryRejectsMissingDir) {
  rsf::idl::SpecRegistry registry;
  EXPECT_EQ(registry.LoadDirectory((root_ / "nope").string()).code(),
            rsf::StatusCode::kNotFound);
}

TEST_F(GenerateAllTest, LoadDirectoryRejectsBadIdl) {
  rsf::idl::SpecRegistry registry;
  Write("msgs/demo_msgs/Broken.msg", "uint32\n");
  EXPECT_FALSE(registry.LoadDirectory((root_ / "msgs").string()).ok());
}

}  // namespace
