// Tests for the Fig. 14 comparator formats: protobuf_mini, flatbuf_mini,
// and xcdr2/FlatData — round trips, golden layout shapes matching the
// paper's Figs. 5 and 6, and builder/view API behaviour.
#include <gtest/gtest.h>

#include "common/endian.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/PointCloud.h"
#include "serialization/flatbuf_mini.h"
#include "serialization/protobuf_mini.h"
#include "serialization/ros1.h"
#include "serialization/xcdr2.h"
#include "std_msgs/Header.h"

namespace {

sensor_msgs::Image MakeImage(uint32_t h, uint32_t w) {
  sensor_msgs::Image img;
  img.header.seq = 11;
  img.header.frame_id = "cam0";
  img.height = h;
  img.width = w;
  img.encoding = "rgb8";
  img.step = w * 3;
  img.data.resize(static_cast<size_t>(h) * w * 3);
  for (size_t i = 0; i < img.data.size(); ++i) {
    img.data[i] = static_cast<uint8_t>(i * 7);
  }
  return img;
}

// ---------------- protobuf_mini ----------------

TEST(ProtobufMini, VarintEdgeCases) {
  using rsf::ser::pb::internal::VarintSize;
  EXPECT_EQ(VarintSize(0), 1u);
  EXPECT_EQ(VarintSize(127), 1u);
  EXPECT_EQ(VarintSize(128), 2u);
  EXPECT_EQ(VarintSize(16383), 2u);
  EXPECT_EQ(VarintSize(16384), 3u);
  EXPECT_EQ(VarintSize(~0ull), 10u);
}

TEST(ProtobufMini, ImageRoundTrip) {
  const auto img = MakeImage(16, 16);
  const auto wire = rsf::ser::pb::Encode(img);
  EXPECT_EQ(wire.size(), rsf::ser::pb::EncodedSize(img));

  sensor_msgs::Image out;
  ASSERT_TRUE(rsf::ser::pb::Decode(wire.data(), wire.size(), out).ok());
  EXPECT_EQ(out.header.frame_id, "cam0");
  EXPECT_EQ(out.height, 16u);
  EXPECT_EQ(out.encoding, "rgb8");
  EXPECT_EQ(out.data, img.data);
}

TEST(ProtobufMini, NegativeIntsSurviveRoundTrip) {
  geometry_msgs::Point32 p;  // via PointCloud to get signed-ish floats
  sensor_msgs::PointCloud cloud;
  cloud.points.resize(1);
  cloud.points[0].x = -3.25f;
  cloud.points[0].y = 1e-9f;
  const auto wire = rsf::ser::pb::Encode(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(rsf::ser::pb::Decode(wire.data(), wire.size(), out).ok());
  EXPECT_FLOAT_EQ(out.points[0].x, -3.25f);
  EXPECT_FLOAT_EQ(out.points[0].y, 1e-9f);
  (void)p;
}

TEST(ProtobufMini, SmallValuesEncodeSmall) {
  // The prefix-encoding property the paper cites: small ints cost 1 byte.
  std_msgs::Header header;
  header.seq = 3;
  const auto wire = rsf::ser::pb::Encode(header);
  // tag(1)+varint(1) + tag(1)+fixed64(8) + tag(1)+len(1)+0 bytes = 13
  EXPECT_EQ(wire.size(), 13u);
}

TEST(ProtobufMini, RepeatedMessagesRoundTrip) {
  sensor_msgs::PointCloud cloud;
  cloud.channels.resize(2);
  cloud.channels[0].name = "a";
  cloud.channels[0].values = {1.0f, 2.0f, 3.0f};
  cloud.channels[1].name = "b";
  const auto wire = rsf::ser::pb::Encode(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(rsf::ser::pb::Decode(wire.data(), wire.size(), out).ok());
  ASSERT_EQ(out.channels.size(), 2u);
  EXPECT_EQ(out.channels[0].name, "a");
  ASSERT_EQ(out.channels[0].values.size(), 3u);
  EXPECT_FLOAT_EQ(out.channels[0].values[2], 3.0f);
  EXPECT_EQ(out.channels[1].name, "b");
}

TEST(ProtobufMini, TruncationRejected) {
  const auto img = MakeImage(4, 4);
  const auto wire = rsf::ser::pb::Encode(img);
  sensor_msgs::Image out;
  EXPECT_FALSE(rsf::ser::pb::Decode(wire.data(), wire.size() / 2, out).ok());
}

// ---------------- flatbuf_mini ----------------

TEST(FlatbufMini, BuilderApiMatchesPaperProgramPattern) {
  // The Fig. 4-style builder flow for the simplified Image of Fig. 1.
  namespace fb = rsf::ser::fb;
  fb::Builder builder;
  const fb::Ref encoding = builder.CreateString("rgb8");
  auto [data_ref, pixels] = builder.CreateUninitializedVector<uint8_t>(300);
  for (int i = 0; i < 300; ++i) pixels[i] = static_cast<uint8_t>(i);

  builder.StartTable(4);
  builder.AddRef(0, encoding);
  builder.AddScalar<uint32_t>(1, 10);  // height
  builder.AddScalar<uint32_t>(2, 10);  // width
  builder.AddRef(3, data_ref);
  const fb::Ref root = builder.FinishTable();
  const auto buffer = builder.Finish(root);

  const fb::TableView view = fb::GetRoot(buffer.data(), buffer.size());
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.GetString(0), "rgb8");
  EXPECT_EQ(view.GetScalar<uint32_t>(1), 10u);
  EXPECT_EQ(view.GetScalar<uint32_t>(2), 10u);
  const auto [data, count] = view.GetVector<uint8_t>(3);
  ASSERT_EQ(count, 300u);
  EXPECT_EQ(data[299], static_cast<uint8_t>(299));
}

TEST(FlatbufMini, LayoutHasVtableAndRootTable) {
  // Structural golden test against Fig. 6: the buffer leads with the root
  // table position; the root table's first word locates the vtable, whose
  // first two u16s are vtable size and table size; per-field offsets follow.
  namespace fb = rsf::ser::fb;
  fb::Builder builder;
  const auto encoding = builder.CreateString("rgb8");
  builder.StartTable(3);
  builder.AddRef(0, encoding);
  builder.AddScalar<uint32_t>(1, 10);
  builder.AddScalar<uint32_t>(2, 20);
  const auto root = builder.FinishTable();
  const auto buffer = builder.Finish(root);

  const auto root_pos = rsf::LoadLE<uint32_t>(buffer.data());
  ASSERT_LT(root_pos, buffer.size());
  // The table's first word stores the distance to the vtable (Fig. 6 keeps
  // the vtable before the table; we emit it after, so the delta is added).
  const auto vtable_delta = rsf::LoadLE<int32_t>(buffer.data() + root_pos);
  const uint32_t vtable_pos = root_pos + vtable_delta;
  ASSERT_LT(vtable_pos, buffer.size());

  const auto vtable_size = rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos);
  EXPECT_EQ(vtable_size, 4 + 2 * 3);  // header + 3 slots (Fig. 6: 12 for 4)
  const auto table_size = rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos + 2);
  EXPECT_GE(table_size, 4 + 4 + 4 + 4);

  // Every slot offset must be non-zero (all fields present) and in-table.
  for (size_t slot = 0; slot < 3; ++slot) {
    const auto off =
        rsf::LoadLE<uint16_t>(buffer.data() + vtable_pos + 4 + 2 * slot);
    EXPECT_GT(off, 0u);
    EXPECT_LT(off, table_size);
  }
}

TEST(FlatbufMini, AbsentFieldsReadAsDefaults) {
  namespace fb = rsf::ser::fb;
  fb::Builder builder;
  builder.StartTable(3);
  builder.AddScalar<uint32_t>(1, 77);  // only the middle slot present
  const auto root = builder.FinishTable();
  const auto buffer = builder.Finish(root);

  const fb::TableView view = fb::GetRoot(buffer.data(), buffer.size());
  EXPECT_EQ(view.GetScalar<uint32_t>(0, 5), 5u);  // fallback
  EXPECT_EQ(view.GetScalar<uint32_t>(1), 77u);
  EXPECT_EQ(view.GetString(2), "");
  EXPECT_EQ(view.GetVector<uint8_t>(2).second, 0u);
}

TEST(FlatbufMini, GenericBridgeRoundTripsFullImage) {
  const auto img = MakeImage(8, 8);
  const auto buffer = rsf::ser::fb::BuildFromMessage(img);
  sensor_msgs::Image out;
  ASSERT_TRUE(
      rsf::ser::fb::ReadIntoMessage(buffer.data(), buffer.size(), out).ok());
  EXPECT_EQ(out.header.frame_id, "cam0");
  EXPECT_EQ(out.height, 8u);
  EXPECT_EQ(out.encoding, "rgb8");
  EXPECT_EQ(out.data, img.data);
}

TEST(FlatbufMini, GenericBridgeRoundTripsNestedVectors) {
  sensor_msgs::PointCloud cloud;
  cloud.header.frame_id = "lidar";
  cloud.points.resize(5);
  cloud.points[4].y = 2.5f;
  cloud.channels.resize(2);
  cloud.channels[1].name = "ring";
  cloud.channels[1].values = {7.0f};

  const auto buffer = rsf::ser::fb::BuildFromMessage(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(
      rsf::ser::fb::ReadIntoMessage(buffer.data(), buffer.size(), out).ok());
  ASSERT_EQ(out.points.size(), 5u);
  EXPECT_FLOAT_EQ(out.points[4].y, 2.5f);
  ASSERT_EQ(out.channels.size(), 2u);
  EXPECT_EQ(out.channels[1].name, "ring");
  ASSERT_EQ(out.channels[1].values.size(), 1u);
}

// ---------------- xcdr2 / FlatData ----------------

TEST(Xcdr2, EmheaderEncodesKindAndIndex) {
  using namespace rsf::ser::xcdr2;
  const uint32_t header = MakeHeader(kVariable, 2);
  EXPECT_EQ(header, 0x40000002u);  // the exact word of paper Fig. 5
  EXPECT_EQ(HeaderKind(header), kVariable);
  EXPECT_EQ(HeaderIndex(header), 2u);
}

TEST(Xcdr2, SimplifiedImageMatchesFig5Shape) {
  // Build the paper's running example with member indexes matching Fig. 5
  // (encoding=2, height=0, width=1, data=3) and check the golden layout.
  namespace xc = rsf::ser::xcdr2;
  xc::Builder builder;
  builder.AddString(2, "rgb8");
  builder.AddScalar<uint32_t>(0, 10);
  builder.AddScalar<uint32_t>(1, 10);
  std::vector<uint8_t> pixels(300, 0xAA);
  builder.AddVector(3, pixels.data(), pixels.size());
  const auto buffer = builder.Finish();

  // Fig. 5 totals: 0x28 of headers/values + 300 data bytes = 0x154.
  EXPECT_EQ(buffer.size(), 0x154u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0000), 0x40000002u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0004), 8u);  // padded len
  EXPECT_EQ(std::memcmp(buffer.data() + 0x0008, "rgb8\0\0\0\0", 8), 0);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0010), 0x20000000u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0014), 10u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0018), 0x20000001u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x001c), 10u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0020), 0x40000003u);
  EXPECT_EQ(rsf::LoadLE<uint32_t>(buffer.data() + 0x0024), 300u);
}

TEST(Xcdr2, ViewScansForMembersByIndex) {
  namespace xc = rsf::ser::xcdr2;
  xc::Builder builder;
  builder.AddString(2, "rgb8");
  builder.AddScalar<uint32_t>(0, 10);
  builder.AddScalar<uint32_t>(1, 20);
  std::vector<uint8_t> pixels = {1, 2, 3};
  builder.AddVector(3, pixels.data(), pixels.size());
  const auto buffer = builder.Finish();

  const xc::View view(buffer.data(), buffer.size());
  EXPECT_EQ(view.GetScalar<uint32_t>(0), 10u);
  EXPECT_EQ(view.GetScalar<uint32_t>(1), 20u);
  EXPECT_EQ(view.GetString(2), "rgb8");
  const auto [data, count] = view.GetVector<uint8_t>(3);
  ASSERT_EQ(count, 3u);
  EXPECT_EQ(data[2], 3);
  EXPECT_EQ(view.GetScalar<uint32_t>(9, 123), 123u);  // absent -> fallback
}

TEST(Xcdr2, FullImageRoundTrip) {
  const auto img = MakeImage(8, 8);
  const auto wire = rsf::ser::xcdr2::Serialize(img);
  sensor_msgs::Image out;
  ASSERT_TRUE(
      rsf::ser::xcdr2::Deserialize(wire.data(), wire.size(), out).ok());
  EXPECT_EQ(out.header.frame_id, "cam0");
  EXPECT_EQ(out.encoding, "rgb8");
  EXPECT_EQ(out.data, img.data);
}

TEST(Xcdr2, NestedMessageVectorsRoundTrip) {
  sensor_msgs::PointCloud cloud;
  cloud.points.resize(2);
  cloud.points[0].x = 9.0f;
  cloud.channels.resize(1);
  cloud.channels[0].name = "i";
  cloud.channels[0].values = {4.0f, 5.0f};
  const auto wire = rsf::ser::xcdr2::Serialize(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(
      rsf::ser::xcdr2::Deserialize(wire.data(), wire.size(), out).ok());
  EXPECT_FLOAT_EQ(out.points[0].x, 9.0f);
  ASSERT_EQ(out.channels[0].values.size(), 2u);
  EXPECT_FLOAT_EQ(out.channels[0].values[1], 5.0f);
}

TEST(Xcdr2, UninitializedVectorWritesInPlace) {
  // FlatData idiom: produce pixel content directly in the wire buffer.
  namespace xc = rsf::ser::xcdr2;
  xc::Builder builder;
  uint8_t* pixels = builder.AddUninitializedVector<uint8_t>(0, 64);
  for (int i = 0; i < 64; ++i) pixels[i] = static_cast<uint8_t>(64 - i);
  const auto buffer = builder.Finish();
  const xc::View view(buffer.data(), buffer.size());
  const auto [data, count] = view.GetVector<uint8_t>(0);
  ASSERT_EQ(count, 64u);
  EXPECT_EQ(data[0], 64);
  EXPECT_EQ(data[63], 1);
}

// ---------------- cross-format equivalence ----------------

class AllFormatsRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AllFormatsRoundTrip, ImagePayloadSurvivesEveryFormat) {
  const uint32_t side = GetParam();
  const auto img = MakeImage(side, side);

  {
    const auto wire = rsf::ser::ros1::SerializeToVector(img);
    sensor_msgs::Image out;
    ASSERT_TRUE(rsf::ser::ros1::Deserialize(wire.data(), wire.size(), out).ok());
    EXPECT_EQ(out.data, img.data);
  }
  {
    const auto wire = rsf::ser::pb::Encode(img);
    sensor_msgs::Image out;
    ASSERT_TRUE(rsf::ser::pb::Decode(wire.data(), wire.size(), out).ok());
    EXPECT_EQ(out.data, img.data);
  }
  {
    const auto wire = rsf::ser::fb::BuildFromMessage(img);
    sensor_msgs::Image out;
    ASSERT_TRUE(
        rsf::ser::fb::ReadIntoMessage(wire.data(), wire.size(), out).ok());
    EXPECT_EQ(out.data, img.data);
  }
  {
    const auto wire = rsf::ser::xcdr2::Serialize(img);
    sensor_msgs::Image out;
    ASSERT_TRUE(
        rsf::ser::xcdr2::Deserialize(wire.data(), wire.size(), out).ok());
    EXPECT_EQ(out.data, img.data);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllFormatsRoundTrip,
                         ::testing::Values(1, 3, 16, 64, 200));

}  // namespace
