// ROS1 wire-format tests: golden byte layouts, round trips over every field
// category, truncation handling, and regular<->SFM cross-variant
// equivalence (the two variants must produce compatible field values).
#include "serialization/ros1.h"

#include <gtest/gtest.h>

#include "geometry_msgs/PoseStamped.h"
#include "nav_msgs/Odometry.h"
#include "nav_msgs/Path.h"
#include "sensor_msgs/CameraInfo.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/PointCloud.h"
#include "sensor_msgs/sfm/Image.h"
#include "sfm/sfm.h"
#include "std_msgs/Header.h"

namespace {

using rsf::ser::ros1::Deserialize;
using rsf::ser::ros1::SerializedLength;
using rsf::ser::ros1::SerializeToVector;

TEST(Ros1Format, HeaderGoldenBytes) {
  std_msgs::Header header;
  header.seq = 7;
  header.stamp = rsf::Time{1, 2};
  header.frame_id = "map";

  const auto wire = SerializeToVector(header);
  // seq(4) + stamp(8) + len(4) + "map"(3)
  ASSERT_EQ(wire.size(), 19u);
  EXPECT_EQ(wire[0], 7);  // seq LE
  EXPECT_EQ(wire[4], 1);  // stamp.sec
  EXPECT_EQ(wire[8], 2);  // stamp.nsec
  EXPECT_EQ(wire[12], 3); // frame_id length
  EXPECT_EQ(wire[16], 'm');
  EXPECT_EQ(wire[18], 'p');
}

TEST(Ros1Format, ImageRoundTrip) {
  sensor_msgs::Image img;
  img.header.seq = 42;
  img.header.frame_id = "camera_link";
  img.height = 480;
  img.width = 640;
  img.encoding = "rgb8";
  img.is_bigendian = 0;
  img.step = 640 * 3;
  img.data.resize(640 * 480 * 3);
  img.data[0] = 1;
  img.data.back() = 255;

  const auto wire = SerializeToVector(img);
  EXPECT_EQ(wire.size(), SerializedLength(img));

  sensor_msgs::Image out;
  ASSERT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
  EXPECT_EQ(out.header.seq, 42u);
  EXPECT_EQ(out.header.frame_id, "camera_link");
  EXPECT_EQ(out.height, 480u);
  EXPECT_EQ(out.encoding, "rgb8");
  ASSERT_EQ(out.data.size(), img.data.size());
  EXPECT_EQ(out.data[0], 1);
  EXPECT_EQ(out.data.back(), 255);
}

TEST(Ros1Format, NestedMessageVectorRoundTrip) {
  sensor_msgs::PointCloud cloud;
  cloud.header.frame_id = "base";
  cloud.points.resize(3);
  cloud.points[1].x = 1.0f;
  cloud.points[2].z = -4.5f;
  cloud.channels.resize(1);
  cloud.channels[0].name = "intensity";
  cloud.channels[0].values = {0.5f, 0.75f};

  const auto wire = SerializeToVector(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
  ASSERT_EQ(out.points.size(), 3u);
  EXPECT_FLOAT_EQ(out.points[1].x, 1.0f);
  EXPECT_FLOAT_EQ(out.points[2].z, -4.5f);
  ASSERT_EQ(out.channels.size(), 1u);
  EXPECT_EQ(out.channels[0].name, "intensity");
  ASSERT_EQ(out.channels[0].values.size(), 2u);
  EXPECT_FLOAT_EQ(out.channels[0].values[1], 0.75f);
}

TEST(Ros1Format, FixedArrayRoundTrip) {
  sensor_msgs::CameraInfo info;
  info.distortion_model = "plumb_bob";
  info.D = {0.1, -0.2};
  for (size_t i = 0; i < 9; ++i) info.K[i] = static_cast<double>(i);
  info.P[11] = 3.5;
  info.roi.width = 32;

  const auto wire = SerializeToVector(info);
  sensor_msgs::CameraInfo out;
  ASSERT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
  EXPECT_EQ(out.distortion_model, "plumb_bob");
  ASSERT_EQ(out.D.size(), 2u);
  EXPECT_DOUBLE_EQ(out.K[8], 8.0);
  EXPECT_DOUBLE_EQ(out.P[11], 3.5);
  EXPECT_EQ(out.roi.width, 32u);
}

TEST(Ros1Format, DeeplyNestedRoundTrip) {
  nav_msgs::Odometry odom;
  odom.child_frame_id = "base_link";
  odom.pose.pose.position.x = 1.25;
  odom.pose.covariance[35] = 9.0;
  odom.twist.twist.angular.z = -0.5;

  const auto wire = SerializeToVector(odom);
  nav_msgs::Odometry out;
  ASSERT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
  EXPECT_DOUBLE_EQ(out.pose.pose.position.x, 1.25);
  EXPECT_DOUBLE_EQ(out.pose.covariance[35], 9.0);
  EXPECT_DOUBLE_EQ(out.twist.twist.angular.z, -0.5);
}

TEST(Ros1Format, VectorOfStampedMessages) {
  nav_msgs::Path path;
  path.poses.resize(4);
  path.poses[2].header.frame_id = "odom";
  path.poses[2].pose.orientation.w = 1.0;

  const auto wire = SerializeToVector(path);
  nav_msgs::Path out;
  ASSERT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
  ASSERT_EQ(out.poses.size(), 4u);
  EXPECT_EQ(out.poses[2].header.frame_id, "odom");
  EXPECT_DOUBLE_EQ(out.poses[2].pose.orientation.w, 1.0);
}

TEST(Ros1Format, TruncatedBufferIsRejectedEverywhere) {
  sensor_msgs::Image img;
  img.encoding = "rgb8";
  img.data.resize(64);
  const auto wire = SerializeToVector(img);

  // Any prefix must fail cleanly, never crash or accept silently.
  for (size_t cut = 0; cut < wire.size(); cut += 3) {
    sensor_msgs::Image out;
    EXPECT_FALSE(Deserialize(wire.data(), cut, out).ok()) << cut;
  }
}

TEST(Ros1Format, TrailingBytesRejected) {
  std_msgs::Header header;
  auto wire = SerializeToVector(header);
  wire.push_back(0xFF);
  std_msgs::Header out;
  EXPECT_EQ(Deserialize(wire.data(), wire.size(), out).code(),
            rsf::StatusCode::kInvalidArgument);
}

TEST(Ros1Format, SfmMessageSerializesToSameWireAsRegular) {
  // The generic serializer also accepts SFM variants (used by equivalence
  // tests and the fallback path); the bytes must match the regular struct's.
  sensor_msgs::Image regular;
  regular.header.seq = 9;
  regular.header.frame_id = "cam";
  regular.height = 2;
  regular.width = 3;
  regular.encoding = "mono8";
  regular.step = 3;
  regular.data = {10, 20, 30, 40, 50, 60};

  auto sfm_img = sfm::make_message<sensor_msgs::sfm::Image>();
  sfm_img->header.seq = 9;
  sfm_img->header.frame_id = "cam";
  sfm_img->height = 2;
  sfm_img->width = 3;
  sfm_img->encoding = "mono8";
  sfm_img->step = 3;
  sfm_img->data.resize(6);
  for (size_t i = 0; i < 6; ++i) {
    sfm_img->data[i] = static_cast<uint8_t>((i + 1) * 10);
  }

  EXPECT_EQ(SerializeToVector(regular), SerializeToVector(*sfm_img));
}

TEST(Ros1Format, EmptyMessageHasDeterministicLength) {
  sensor_msgs::Image img;  // all defaults
  const auto wire = SerializeToVector(img);
  // header(seq 4 + stamp 8 + strlen 4) + h 4 + w 4 + enc strlen 4 +
  // bigendian 1 + step 4 + data count 4
  EXPECT_EQ(wire.size(), 37u);
  sensor_msgs::Image out;
  EXPECT_TRUE(Deserialize(wire.data(), wire.size(), out).ok());
}

}  // namespace
