// Property tests over the ENTIRE generated message set: every type is
// filled deterministically through the field model, round-tripped through
// the ROS1 wire format (regular variant) and through the SFM publish/adopt
// path (SFM variant), and compared field-by-field — all generically, so a
// new .msg file is covered the moment it is added.
#include <gtest/gtest.h>

#include <sstream>

#include "serialization/ros1.h"
#include "sfm/sfm.h"

// Both variants of everything.
#include "geometry_msgs/Point.h"
#include "geometry_msgs/Pose.h"
#include "geometry_msgs/PoseStamped.h"
#include "geometry_msgs/TransformStamped.h"
#include "geometry_msgs/Twist.h"
#include "geometry_msgs/sfm/Point.h"
#include "geometry_msgs/sfm/Pose.h"
#include "geometry_msgs/sfm/PoseStamped.h"
#include "geometry_msgs/sfm/TransformStamped.h"
#include "geometry_msgs/sfm/Twist.h"
#include "nav_msgs/OccupancyGrid.h"
#include "nav_msgs/Odometry.h"
#include "nav_msgs/Path.h"
#include "nav_msgs/sfm/OccupancyGrid.h"
#include "nav_msgs/sfm/Odometry.h"
#include "nav_msgs/sfm/Path.h"
#include "rsf_msgs/Dictionary.h"
#include "rsf_msgs/sfm/Dictionary.h"
#include "sensor_msgs/CameraInfo.h"
#include "sensor_msgs/CompressedImage.h"
#include "sensor_msgs/Image.h"
#include "sensor_msgs/Imu.h"
#include "sensor_msgs/LaserScan.h"
#include "sensor_msgs/PointCloud.h"
#include "sensor_msgs/PointCloud2.h"
#include "sensor_msgs/sfm/CameraInfo.h"
#include "sensor_msgs/sfm/CompressedImage.h"
#include "sensor_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/Imu.h"
#include "sensor_msgs/sfm/LaserScan.h"
#include "sensor_msgs/sfm/PointCloud.h"
#include "sensor_msgs/sfm/PointCloud2.h"
#include "std_msgs/ColorRGBA.h"
#include "std_msgs/Header.h"
#include "std_msgs/sfm/ColorRGBA.h"
#include "std_msgs/sfm/Header.h"
#include "stereo_msgs/DisparityImage.h"
#include "stereo_msgs/sfm/DisparityImage.h"

namespace {

using rsf::ser::element_of_t;
using rsf::ser::is_scalar_v;
using rsf::ser::is_std_array_v;
using rsf::ser::is_string_like_v;
using rsf::ser::is_vector_like_v;
using rsf::ser::Message;

/// Deterministically fills any message through for_each_field.
class Filler {
 public:
  explicit Filler(uint32_t seed) : counter_(seed) {}

  template <Message M>
  void Fill(M& msg) {
    msg.for_each_field([this](const char*, auto& field) { FillField(field); });
  }

 private:
  uint32_t Next() { return counter_ = counter_ * 1664525u + 1013904223u; }

  template <typename T>
  void FillField(T& field) {
    if constexpr (std::is_same_v<T, rsf::Time>) {
      field = rsf::Time{Next() % 100000, Next() % 1000000000};
    } else if constexpr (std::is_floating_point_v<T>) {
      field = static_cast<T>(Next() % 10000) / 16;
    } else if constexpr (std::is_arithmetic_v<T>) {
      field = static_cast<T>(Next());
    } else if constexpr (is_string_like_v<T>) {
      field = "v" + std::to_string(Next() % 100000);
    } else if constexpr (is_vector_like_v<T>) {
      using E = element_of_t<T>;
      field.resize(1 + Next() % 4);
      for (size_t i = 0; i < field.size(); ++i) {
        if constexpr (is_scalar_v<E>) {
          E value{};
          FillField(value);
          field[i] = value;
        } else {
          Fill(field[i]);
        }
      }
    } else if constexpr (is_std_array_v<T>) {
      for (auto& element : field) FillField(element);
    } else {
      Fill(field);
    }
  }

  uint32_t counter_;
};

/// Compile-time compatibility of two field types (same IDL category); the
/// lockstep visitor instantiates comparisons for every index pair, so
/// incompatible pairs must be pruned at compile time.
template <typename A, typename B>
constexpr bool Compatible() {
  if constexpr (is_scalar_v<A> || is_scalar_v<B>) {
    return std::is_same_v<A, B>;
  } else if constexpr (is_string_like_v<A> && is_string_like_v<B>) {
    return true;
  } else if constexpr ((is_vector_like_v<A> || is_std_array_v<A>) &&
                       (is_vector_like_v<B> || is_std_array_v<B>)) {
    return Compatible<element_of_t<A>, element_of_t<B>>();
  } else if constexpr (Message<A> && Message<B>) {
    return true;  // nested: field-wise recursion prunes deeper mismatches
  } else {
    return false;
  }
}

/// Field-wise structural comparison between any two message variants that
/// share a definition (regular vs regular, sfm vs sfm, or mixed).
template <typename A, typename B>
bool FieldsEqual(const A& a, const B& b, std::string* diff);

template <typename A, typename B>
bool ValueEqual(const A& a, const B& b, std::string* diff) {
  if constexpr (is_scalar_v<A>) {
    if (a == b) return true;
    *diff += "scalar mismatch;";
    return false;
  } else if constexpr (is_string_like_v<A>) {
    if (std::string_view(a.data(), a.size()) ==
        std::string_view(b.data(), b.size())) {
      return true;
    }
    *diff += "string mismatch;";
    return false;
  } else if constexpr (is_vector_like_v<A> || is_std_array_v<A>) {
    if (a.size() != b.size()) {
      *diff += "size mismatch;";
      return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ValueEqual(a[i], b[i], diff)) return false;
    }
    return true;
  } else {
    return FieldsEqual(a, b, diff);
  }
}

template <typename A, typename B>
bool FieldsEqual(const A& a, const B& b, std::string* diff) {
  bool equal = true;
  size_t index = 0;
  a.for_each_field([&](const char*, const auto& field_a) {
    size_t j = 0;
    b.for_each_field([&](const char* name_b, const auto& field_b) {
      using FA = std::decay_t<decltype(field_a)>;
      using FB = std::decay_t<decltype(field_b)>;
      if constexpr (Compatible<FA, FB>()) {
        if (j == index) {
          if (!ValueEqual(field_a, field_b, diff)) {
            *diff += std::string(" at field ") + name_b + ";";
            equal = false;
          }
        }
      } else {
        if (j == index) {
          *diff += std::string("category mismatch at ") + name_b + ";";
          equal = false;
        }
      }
      ++j;
    });
    ++index;
  });
  return equal;
}

/// The generic per-type property check.
template <typename Regular, typename Sfm>
void CheckType() {
  SCOPED_TRACE(Regular::DataType());

  // 1. Regular: fill -> ros1 serialize -> deserialize -> equal.
  Regular original;
  Filler(0xC0FFEE).Fill(original);
  const auto wire = rsf::ser::ros1::SerializeToVector(original);
  Regular decoded;
  ASSERT_TRUE(rsf::ser::ros1::Deserialize(wire.data(), wire.size(), decoded)
                  .ok());
  std::string diff;
  EXPECT_TRUE(FieldsEqual(original, decoded, &diff)) << diff;

  // 2. SFM: fill identically -> regular and SFM variants agree field-wise.
  auto sfm_msg = sfm::make_message<Sfm>();
  Filler(0xC0FFEE).Fill(*sfm_msg);
  diff.clear();
  EXPECT_TRUE(FieldsEqual(original, *sfm_msg, &diff)) << diff;

  // 3. SFM wire: publish -> adopt -> still equal to the regular original.
  const auto buffer = sfm::gmm().Publish(sfm_msg.get());
  ASSERT_TRUE(buffer.has_value());
  auto block = std::make_unique<uint8_t[]>(buffer->size);
  std::memcpy(block.get(), buffer->data.get(), buffer->size);
  const uint8_t* start = sfm::gmm().AdoptReceived(
      Sfm::DataType(), std::move(block), buffer->size, buffer->size);
  auto received = sfm::WrapReceived<Sfm>(start);
  diff.clear();
  EXPECT_TRUE(FieldsEqual(original, *received, &diff)) << diff;

  // 4. The two variants' ROS1 serializations are byte-identical.
  EXPECT_EQ(wire, rsf::ser::ros1::SerializeToVector(*sfm_msg));

  // 5. Checksums and datatypes agree across variants.
  EXPECT_STREQ(Regular::DataType(), Sfm::DataType());
  EXPECT_STREQ(Regular::Md5Sum(), Sfm::Md5Sum());
}

TEST(AllMessages, Header) { CheckType<std_msgs::Header, std_msgs::sfm::Header>(); }
TEST(AllMessages, ColorRGBA) {
  CheckType<std_msgs::ColorRGBA, std_msgs::sfm::ColorRGBA>();
}
TEST(AllMessages, Point) {
  CheckType<geometry_msgs::Point, geometry_msgs::sfm::Point>();
}
TEST(AllMessages, Pose) {
  CheckType<geometry_msgs::Pose, geometry_msgs::sfm::Pose>();
}
TEST(AllMessages, PoseStamped) {
  CheckType<geometry_msgs::PoseStamped, geometry_msgs::sfm::PoseStamped>();
}
TEST(AllMessages, Twist) {
  CheckType<geometry_msgs::Twist, geometry_msgs::sfm::Twist>();
}
TEST(AllMessages, TransformStamped) {
  CheckType<geometry_msgs::TransformStamped,
            geometry_msgs::sfm::TransformStamped>();
}
TEST(AllMessages, Image) {
  CheckType<sensor_msgs::Image, sensor_msgs::sfm::Image>();
}
TEST(AllMessages, CompressedImage) {
  CheckType<sensor_msgs::CompressedImage, sensor_msgs::sfm::CompressedImage>();
}
TEST(AllMessages, CameraInfo) {
  CheckType<sensor_msgs::CameraInfo, sensor_msgs::sfm::CameraInfo>();
}
TEST(AllMessages, Imu) { CheckType<sensor_msgs::Imu, sensor_msgs::sfm::Imu>(); }
TEST(AllMessages, LaserScan) {
  CheckType<sensor_msgs::LaserScan, sensor_msgs::sfm::LaserScan>();
}
TEST(AllMessages, PointCloud) {
  CheckType<sensor_msgs::PointCloud, sensor_msgs::sfm::PointCloud>();
}
TEST(AllMessages, PointCloud2) {
  CheckType<sensor_msgs::PointCloud2, sensor_msgs::sfm::PointCloud2>();
}
TEST(AllMessages, DisparityImage) {
  CheckType<stereo_msgs::DisparityImage, stereo_msgs::sfm::DisparityImage>();
}
TEST(AllMessages, Odometry) {
  CheckType<nav_msgs::Odometry, nav_msgs::sfm::Odometry>();
}
TEST(AllMessages, Path) { CheckType<nav_msgs::Path, nav_msgs::sfm::Path>(); }
TEST(AllMessages, OccupancyGrid) {
  CheckType<nav_msgs::OccupancyGrid, nav_msgs::sfm::OccupancyGrid>();
}
TEST(AllMessages, Dictionary) {
  CheckType<rsf_msgs::Dictionary, rsf_msgs::sfm::Dictionary>();
}

}  // namespace
