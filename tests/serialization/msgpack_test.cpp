// Tests for msgpack_mini (related-work prefix encoding, paper §2.2):
// golden tag bytes, integer-width selection, and full-message round trips.
#include <gtest/gtest.h>

#include "sensor_msgs/Image.h"
#include "sensor_msgs/PointCloud.h"
#include "serialization/msgpack_mini.h"
#include "serialization/ros1.h"
#include "std_msgs/Header.h"

namespace {

namespace mp = rsf::ser::mp;

TEST(MsgpackMini, IntegerWidthSelection) {
  std::vector<uint8_t> out;
  mp::internal::WriteUint(out, 5);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x05}));  // positive fixint

  out.clear();
  mp::internal::WriteUint(out, 200);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xCC, 200}));  // uint8

  out.clear();
  mp::internal::WriteUint(out, 0x1234);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xCD, 0x12, 0x34}));  // uint16 BE

  out.clear();
  mp::internal::WriteInt(out, -5);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xFB}));  // negative fixint

  out.clear();
  mp::internal::WriteInt(out, -200);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xD1, 0xFF, 0x38}));  // int16 BE
}

TEST(MsgpackMini, IntRoundTripSweep) {
  for (const int64_t value :
       {int64_t{0}, int64_t{1}, int64_t{127}, int64_t{128}, int64_t{-1},
        int64_t{-32}, int64_t{-33}, int64_t{-129}, int64_t{65535},
        int64_t{-40000}, int64_t{1} << 40, -(int64_t{1} << 40)}) {
    std::vector<uint8_t> out;
    mp::internal::WriteInt(out, value);
    mp::internal::Reader reader(out.data(), out.size());
    int64_t decoded = 0;
    ASSERT_TRUE(mp::internal::ReadInt(reader, &decoded).ok()) << value;
    EXPECT_EQ(decoded, value);
  }
}

TEST(MsgpackMini, HeaderGoldenBytes) {
  std_msgs::Header header;
  header.seq = 7;
  header.stamp = rsf::Time{0, 0};
  header.frame_id = "map";
  const auto wire = mp::Encode(header);
  // fixarray(3), fixint 7, fixint 0 (0 ns), fixstr(3) "map"
  const std::vector<uint8_t> expected = {0x93, 0x07, 0x00,
                                         0xA3, 'm',  'a',  'p'};
  EXPECT_EQ(wire, expected);
}

TEST(MsgpackMini, ImageRoundTrip) {
  sensor_msgs::Image img;
  img.header.seq = 1000;
  img.header.stamp = rsf::Time::Now();
  img.header.frame_id = "cam";
  img.height = 480;
  img.width = 640;
  img.encoding = "rgb8";
  img.step = 1920;
  img.data.resize(100000);
  img.data[99999] = 0x31;

  const auto wire = mp::Encode(img);
  sensor_msgs::Image out;
  ASSERT_TRUE(mp::Decode(wire.data(), wire.size(), out).ok());
  EXPECT_EQ(out.header.seq, 1000u);
  EXPECT_EQ(out.header.stamp, img.header.stamp);
  EXPECT_EQ(out.header.frame_id, "cam");
  EXPECT_EQ(out.encoding, "rgb8");
  EXPECT_EQ(out.data, img.data);
}

TEST(MsgpackMini, NestedMessageVectorsRoundTrip) {
  sensor_msgs::PointCloud cloud;
  cloud.points.resize(3);
  cloud.points[2].x = -1.25f;
  cloud.channels.resize(1);
  cloud.channels[0].name = "intensity";
  cloud.channels[0].values = {1.0f, 2.0f};

  const auto wire = mp::Encode(cloud);
  sensor_msgs::PointCloud out;
  ASSERT_TRUE(mp::Decode(wire.data(), wire.size(), out).ok());
  ASSERT_EQ(out.points.size(), 3u);
  EXPECT_FLOAT_EQ(out.points[2].x, -1.25f);
  EXPECT_EQ(out.channels[0].name, "intensity");
  ASSERT_EQ(out.channels[0].values.size(), 2u);
}

TEST(MsgpackMini, SmallMessagesAreSmallerThanRos1) {
  // The prefix-encoding property: small values collapse to single bytes.
  std_msgs::Header header;
  header.seq = 3;
  EXPECT_LT(mp::Encode(header).size(),
            rsf::ser::ros1::SerializedLength(header));
}

TEST(MsgpackMini, TruncationRejected) {
  sensor_msgs::Image img;
  img.data.resize(64);
  const auto wire = mp::Encode(img);
  for (const size_t cut : {size_t{0}, size_t{1}, wire.size() / 2}) {
    sensor_msgs::Image out;
    EXPECT_FALSE(mp::Decode(wire.data(), cut, out).ok()) << cut;
  }
}

TEST(MsgpackMini, FieldCountMismatchRejected) {
  std_msgs::Header header;
  auto wire = mp::Encode(header);
  wire[0] = 0x92;  // claim 2 fields instead of 3
  std_msgs::Header out;
  EXPECT_FALSE(mp::Decode(wire.data(), wire.size(), out).ok());
}

}  // namespace
