// Unit tests for sfm::string and sfm::vector against the generated message
// classes — the memory-layout guarantees of paper §4.1 (Fig. 7) and the
// one-shot assumptions of §4.3.3.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "sensor_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/PointCloud.h"
#include "sfm/sfm.h"
#include "std_msgs/sfm/Header.h"

namespace {

using sensor_msgs::sfm::Image;
using sensor_msgs::sfm::PointCloud;

TEST(SfmString, StartsUnassigned) {
  auto msg = sfm::make_message<Image>();
  EXPECT_TRUE(msg->encoding.empty());
  EXPECT_EQ(msg->encoding.size(), 0u);
  EXPECT_STREQ(msg->encoding.c_str(), "");
  EXPECT_EQ(msg->encoding.wire_length(), 0u);
  EXPECT_EQ(msg->encoding.wire_offset(), 0u);
}

TEST(SfmString, AssignmentStoresContentWithPaddedWireLength) {
  auto msg = sfm::make_message<Image>();
  msg->encoding = "rgb8";
  EXPECT_EQ(msg->encoding.size(), 4u);
  EXPECT_STREQ(msg->encoding.c_str(), "rgb8");
  // Paper Fig. 7: "rgb8" occupies 8 bytes (content + NUL + padding).
  EXPECT_EQ(msg->encoding.wire_length(), 8u);
}

TEST(SfmString, OffsetIsRelativeToTheOffsetWord) {
  auto msg = sfm::make_message<Image>();
  msg->encoding = "mono16";
  const auto* offset_word =
      reinterpret_cast<const uint8_t*>(&msg->encoding) + 4;
  const char* content = reinterpret_cast<const char*>(offset_word) +
                        msg->encoding.wire_offset();
  EXPECT_STREQ(content, "mono16");
}

TEST(SfmString, StdStringInterop) {
  auto msg = sfm::make_message<Image>();
  const std::string source = "bayer_rggb8";
  msg->encoding = source;
  const std::string round_trip = msg->encoding;
  EXPECT_EQ(round_trip, source);
  EXPECT_EQ(msg->encoding, source);
  EXPECT_EQ(msg->encoding, "bayer_rggb8");
  EXPECT_EQ(std::string_view(msg->encoding), "bayer_rggb8");
  EXPECT_EQ(msg->encoding.substr(0, 5), "bayer");
  EXPECT_EQ(msg->encoding[5], '_');
  EXPECT_EQ(msg->encoding.at(0), 'b');
  EXPECT_THROW(msg->encoding.at(99), std::out_of_range);
  EXPECT_EQ(msg->encoding.front(), 'b');
  EXPECT_EQ(msg->encoding.back(), '8');
}

TEST(SfmString, IterationMatchesContent) {
  auto msg = sfm::make_message<Image>();
  msg->encoding = "abc";
  std::string collected;
  for (char c : msg->encoding) collected.push_back(c);
  EXPECT_EQ(collected, "abc");
}

TEST(SfmString, ReassignmentRaisesOneShotAlert) {
  auto msg = sfm::make_message<Image>();
  msg->encoding = "rgb8";
  EXPECT_THROW(msg->encoding = "mono8", sfm::AlertError);
}

TEST(SfmString, ReassignmentFallbackUnderLogPolicy) {
  sfm::ScopedAlertAction scoped(sfm::AlertAction::kSilent);
  sfm::ResetAlertStats();
  auto msg = sfm::make_message<Image>();
  msg->encoding = "rgb8";
  msg->encoding = "mono8";  // counted, falls back
  EXPECT_STREQ(msg->encoding.c_str(), "mono8");
  msg->encoding = "x";  // shorter: reuses the block in place
  EXPECT_STREQ(msg->encoding.c_str(), "x");
  EXPECT_EQ(
      sfm::GetAlertStats().For(sfm::Violation::kStringReassignment), 2u);
}

TEST(SfmVector, ResizeClaimsZeroedElements) {
  auto msg = sfm::make_message<Image>();
  msg->data.resize(300);
  EXPECT_EQ(msg->data.size(), 300u);
  EXPECT_EQ(msg->data.wire_count(), 300u);
  for (size_t i = 0; i < 300; ++i) ASSERT_EQ(msg->data[i], 0) << i;
}

TEST(SfmVector, ElementsAreContiguousAndWritable) {
  auto msg = sfm::make_message<Image>();
  msg->data.resize(16);
  for (size_t i = 0; i < 16; ++i) msg->data[i] = static_cast<uint8_t>(i * 3);
  EXPECT_EQ(msg->data.front(), 0);
  EXPECT_EQ(msg->data.back(), 45);
  EXPECT_EQ(msg->data.data() + 16, msg->data.end());
  size_t index = 0;
  for (uint8_t value : msg->data) {
    EXPECT_EQ(value, static_cast<uint8_t>(index * 3));
    ++index;
  }
}

TEST(SfmVector, AtThrowsOutOfRange) {
  auto msg = sfm::make_message<Image>();
  msg->data.resize(4);
  EXPECT_EQ(msg->data.at(3), 0);
  EXPECT_THROW(msg->data.at(4), std::out_of_range);
}

TEST(SfmVector, ResizeZeroFirstDoesNotConsumeTheOneShot) {
  // Mirrors the paper's failure case 3 precondition: `points.resize(0)` at
  // the top of a routine must not make a later proper resize a violation.
  auto msg = sfm::make_message<Image>();
  msg->data.resize(0);
  EXPECT_EQ(msg->data.size(), 0u);
  msg->data.resize(10);  // first real sizing: no alert
  EXPECT_EQ(msg->data.size(), 10u);
}

TEST(SfmVector, SecondResizeRaisesOneShotAlert) {
  auto msg = sfm::make_message<Image>();
  msg->data.resize(10);
  EXPECT_THROW(msg->data.resize(20), sfm::AlertError);
}

TEST(SfmVector, SecondResizeFallbackPreservesPrefix) {
  sfm::ScopedAlertAction scoped(sfm::AlertAction::kSilent);
  sfm::ResetAlertStats();
  auto msg = sfm::make_message<Image>();
  msg->data.resize(4);
  for (size_t i = 0; i < 4; ++i) msg->data[i] = static_cast<uint8_t>(i + 1);

  msg->data.resize(2);  // shrink in place
  EXPECT_EQ(msg->data.size(), 2u);
  EXPECT_EQ(msg->data[1], 2);

  msg->data.resize(6);  // regrow: prefix must survive
  EXPECT_EQ(msg->data.size(), 6u);
  EXPECT_EQ(msg->data[0], 1);
  EXPECT_EQ(msg->data[1], 2);
  EXPECT_EQ(sfm::GetAlertStats().For(sfm::Violation::kVectorMultiResize), 2u);
}

TEST(SfmVector, AssignFromStdVector) {
  auto msg = sfm::make_message<Image>();
  const std::vector<uint8_t> source = {9, 8, 7, 6};
  msg->data = source;
  ASSERT_EQ(msg->data.size(), 4u);
  EXPECT_EQ(msg->data[0], 9);
  EXPECT_EQ(msg->data[3], 6);
}

TEST(SfmVector, NestedMessageElementsExpandTheSameArena) {
  auto cloud = sfm::make_message<PointCloud>();
  cloud->points.resize(3);
  cloud->points[0].x = 1.5f;
  cloud->points[2].z = -2.0f;
  EXPECT_FLOAT_EQ(cloud->points[0].x, 1.5f);
  EXPECT_FLOAT_EQ(cloud->points[2].z, -2.0f);

  cloud->channels.resize(2);
  cloud->channels[0].name = "intensity";   // nested string -> same arena
  cloud->channels[0].values.resize(3);
  cloud->channels[0].values[1] = 0.25f;
  cloud->channels[1].name = "curvature";
  EXPECT_EQ(cloud->channels[0].name, "intensity");
  EXPECT_FLOAT_EQ(cloud->channels[0].values[1], 0.25f);
  EXPECT_EQ(cloud->channels[1].name, "curvature");

  // Everything landed inside one arena record.
  const auto info = sfm::gmm().Find(cloud.get());
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->size, sizeof(PointCloud));
  EXPECT_LE(info->size, info->capacity);
}

TEST(SfmMessage, StackDeclarationIsDiagnosed) {
  // Without the ROS-SF Converter rewriting it to heap allocation, using a
  // variable-size field of a stack message must raise the unmanaged alert
  // with remediation guidance (paper §4.3.2).
  Image img;
  EXPECT_THROW(img.encoding = "rgb8", sfm::AlertError);
}

TEST(SfmMessage, FixedSkeletonFieldsOfStackMessagesStillWork) {
  // Fixed-size fields never touch the manager, so a stack skeleton is
  // harmless until a variable-size field needs arena memory.
  Image img;
  img.height = 42;
  img.width = 7;
  EXPECT_EQ(img.height, 42u);
}

TEST(SfmMessage, WholeMessageCopyConstruction) {
  auto src = sfm::make_message<Image>();
  src->height = 480;
  src->width = 640;
  src->encoding = "rgb8";
  src->data.resize(640 * 480 * 3);
  src->data[100] = 0xCD;

  auto dst = sfm::make_message<Image>(*src);  // generated copy constructor
  EXPECT_EQ(dst->height, 480u);
  EXPECT_EQ(dst->encoding, "rgb8");
  ASSERT_EQ(dst->data.size(), src->data.size());
  EXPECT_EQ(dst->data[100], 0xCD);

  // Deep copy: mutating the source must not affect the copy.
  src->data[100] = 0x11;
  EXPECT_EQ(dst->data[100], 0xCD);
}

TEST(SfmMessage, WholeMessageAssignmentResetsDestination) {
  auto src = sfm::make_message<Image>();
  src->encoding = "mono8";
  src->data.resize(64);

  auto dst = sfm::make_message<Image>();
  dst->encoding = "rgb8";
  dst->data.resize(8);

  *dst = *src;  // top-level assignment: whole copy, NOT a reassignment alert
  EXPECT_EQ(dst->encoding, "mono8");
  EXPECT_EQ(dst->data.size(), 64u);
}

TEST(SfmMessage, NestedFieldAssignmentIsFieldWise) {
  auto a = sfm::make_message<Image>();
  a->header.seq = 5;
  a->header.frame_id = "camera";

  auto b = sfm::make_message<Image>();
  b->header = a->header;  // nested target: deep copy into b's arena
  EXPECT_EQ(b->header.seq, 5u);
  EXPECT_EQ(b->header.frame_id, "camera");

  const auto info_b = sfm::gmm().Find(b.get());
  ASSERT_TRUE(info_b.has_value());
  // b's frame_id content must live in b's arena, not alias a's.
  const char* content = b->header.frame_id.c_str();
  EXPECT_GE(reinterpret_cast<const uint8_t*>(content), info_b->start);
  EXPECT_LT(reinterpret_cast<const uint8_t*>(content),
            info_b->start + info_b->capacity);
}

TEST(SfmMessage, LifeCycleDeleteBeforeAndAfterPublish) {
  const size_t before = sfm::gmm().LiveCount();
  auto msg = sfm::make_message<Image>();
  msg->data.resize(128);
  EXPECT_EQ(sfm::gmm().LiveCount(), before + 1);

  // Publish: transport takes an aliased buffer pointer.
  const auto buffer = sfm::gmm().Publish(msg.get());
  ASSERT_TRUE(buffer.has_value());

  msg.reset();  // developer releases the object (Fig. 8)
  EXPECT_EQ(sfm::gmm().LiveCount(), before);
  // The bytes survive until the transport drops its reference.
  EXPECT_EQ(buffer->data.get()[0], 0);
}

TEST(SfmMessage, ArenaCapacityOverflowIsReportedWithGuidance) {
  sfm::SetArenaCapacity("sensor_msgs/Image", sizeof(Image) + 64);
  auto msg = sfm::make_message<Image>();
  try {
    msg->data.resize(4096);
    FAIL() << "expected overflow alert";
  } catch (const sfm::AlertError& e) {
    EXPECT_EQ(e.violation(), sfm::Violation::kArenaOverflow);
    EXPECT_NE(std::string(e.what()).find("arena"), std::string::npos);
  }
  sfm::SetArenaCapacity("sensor_msgs/Image", 0);
}

TEST(SfmMessage, SkeletonLayoutMatchesPaperFig7Shape) {
  // For the simplified Image of the paper (string, uint32, uint32, bytes[])
  // the skeleton must be 24 bytes with fields at 0/8/12/16.  Our full
  // sensor_msgs/Image embeds a Header first; check the generated offsets
  // via the static_asserts in the header plus spot checks here.
  EXPECT_EQ(sizeof(std_msgs::sfm::Header), 20u);  // seq 4 + stamp 8 + string 8
  EXPECT_EQ(offsetof(Image, height), 20u);
  EXPECT_EQ(offsetof(Image, width), 24u);
  EXPECT_EQ(offsetof(Image, encoding), 28u);
  EXPECT_EQ(offsetof(Image, data), 44u);
  EXPECT_EQ(sizeof(Image), 52u);
}

TEST(SfmMessage, ReceivePathInterpretsBytesInPlace) {
  // Build a message, snapshot its published bytes, "receive" them into a
  // fresh arena, and read the fields without any de-serialization.
  auto src = sfm::make_message<Image>();
  src->height = 10;
  src->width = 10;
  src->encoding = "rgb8";
  src->data.resize(300);
  src->data[299] = 0x77;
  const auto wire = sfm::gmm().Publish(src.get());
  ASSERT_TRUE(wire.has_value());

  auto block = std::make_unique<uint8_t[]>(wire->size);
  std::memcpy(block.get(), wire->data.get(), wire->size);
  const uint8_t* start = sfm::gmm().AdoptReceived(
      "sensor_msgs/Image", std::move(block), wire->size, wire->size);
  auto received = sfm::WrapReceived<Image>(start);

  EXPECT_EQ(received->height, 10u);
  EXPECT_EQ(received->encoding, "rgb8");
  ASSERT_EQ(received->data.size(), 300u);
  EXPECT_EQ(received->data[299], 0x77);

  const size_t live_before = sfm::gmm().LiveCount();
  received.reset();
  EXPECT_EQ(sfm::gmm().LiveCount(), live_before - 1);
}

}  // namespace
