// Multi-threaded stress tests for the read-mostly MessageManager: the
// shared-lock + CAS Expand fast path, the thread-local record cache and its
// generation-based invalidation, and the overflow alert under contention.
// Built into the ordinary sfm_test binary, so the TSan preset
// (-DRSF_SANITIZE=thread) runs these under the race detector in ctest.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sfm/alert.h"
#include "sfm/message_manager.h"
#include "sfm/shm_pool.h"

namespace sfm {
namespace {

// N threads, each cycling its OWN messages through the shared gmm():
// Allocate -> K x Expand -> Publish -> Release.  Asserts no expansion is
// lost, stats add up, and the manager ends with no extra live records.
TEST(ManagerStress, ConcurrentLifecyclesOnSharedManager) {
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 150;
  constexpr int kExpandsPerMessage = 32;
  constexpr size_t kSkeleton = 64;
  constexpr size_t kGrant = 24;
  constexpr size_t kCapacity =
      kSkeleton + kExpandsPerMessage * ((kGrant + 7) & ~size_t{7}) + 64;

  MessageManager& mm = gmm();
  const size_t live_before = mm.LiveCount();
  const ManagerStats before = mm.Stats();
  size_t live_blocks_before = 0;
  for (const auto& cls : ArenaPoolSnapshot()) live_blocks_before += cls.live;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int m = 0; m < kMessagesPerThread; ++m) {
        auto* start = static_cast<uint8_t*>(
            mm.Allocate("stress/Msg", kCapacity, kSkeleton));
        size_t expect_size = kSkeleton;
        for (int e = 0; e < kExpandsPerMessage; ++e) {
          // Expand via an interior address, like a real sfm field would;
          // repeated expands of one message exercise the thread cache.
          auto* got = static_cast<uint8_t*>(mm.Expand(start + 8, kGrant, 8));
          const size_t aligned = (expect_size + 7) & ~size_t{7};
          if (got != start + aligned) failures.fetch_add(1);
          for (size_t i = 0; i < kGrant; ++i) {
            if (got[i] != 0) failures.fetch_add(1);
          }
          got[0] = 0x5A;  // dirty it; the arena must re-zero on reuse
          expect_size = aligned + kGrant;
        }
        if (mm.SizeOf(start) != expect_size) failures.fetch_add(1);
        const auto buffer = mm.Publish(start);
        if (!buffer.has_value() || buffer->size != expect_size) {
          failures.fetch_add(1);
        }
        if (!mm.Release(start)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mm.LiveCount(), live_before);
  const ManagerStats after = mm.Stats();
  constexpr uint64_t kMessages = uint64_t{kThreads} * kMessagesPerThread;
  EXPECT_EQ(after.allocations - before.allocations, kMessages);
  EXPECT_EQ(after.releases - before.releases, kMessages);
  EXPECT_EQ(after.publishes - before.publishes, kMessages);
  EXPECT_EQ(after.expansions - before.expansions,
            kMessages * kExpandsPerMessage);

  // Every arena block came back to the pool — and none leaked into the
  // shared-memory tier (this binary never negotiates a shm peer).
  size_t live_blocks_after = 0;
  for (const auto& cls : ArenaPoolSnapshot()) live_blocks_after += cls.live;
  EXPECT_EQ(live_blocks_after, live_blocks_before);
  const auto shm_stats = ::sfm::shm::GetPoolStats();
  EXPECT_EQ(shm_stats.live_blocks, 0u);
  EXPECT_EQ(shm_stats.retired_blocks, 0u);
}

// All threads expand the SAME message: the CAS bump loop must hand out
// disjoint, in-bounds regions with nothing lost or overlapping.
TEST(ManagerStress, ConcurrentExpandsOfOneMessageAreDisjoint) {
  constexpr int kThreads = 8;
  constexpr int kExpandsPerThread = 400;
  constexpr size_t kSkeleton = 32;
  constexpr size_t kGrant = 16;  // already 8-aligned: offsets stay exact
  constexpr size_t kCapacity =
      kSkeleton + kThreads * kExpandsPerThread * kGrant + 64;

  MessageManager mm;
  auto* start =
      static_cast<uint8_t*>(mm.Allocate("stress/Shared", kCapacity, kSkeleton));

  std::vector<std::vector<size_t>> offsets(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      offsets[t].reserve(kExpandsPerThread);
      for (int e = 0; e < kExpandsPerThread; ++e) {
        auto* got = static_cast<uint8_t*>(mm.Expand(start, kGrant, 8));
        offsets[t].push_back(static_cast<size_t>(got - start));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<size_t> all;
  for (const auto& per_thread : offsets) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  ASSERT_EQ(all.size(), size_t{kThreads} * kExpandsPerThread);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.front(), kSkeleton);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i], all[i - 1] + kGrant) << "lost or overlapping grant";
  }
  EXPECT_EQ(mm.SizeOf(start),
            kSkeleton + size_t{kThreads} * kExpandsPerThread * kGrant);
  mm.Release(start);
}

// Overflow must still raise kArenaOverflow on the CAS path, and the arena
// must never grow past capacity even when the racers pile up on the edge.
TEST(ManagerStress, OverflowAlertFiresUnderContention) {
  constexpr int kThreads = 4;
  constexpr size_t kSkeleton = 16;
  constexpr size_t kGrant = 64;
  constexpr size_t kCapacity = kSkeleton + 10 * kGrant;  // room for 10 grants

  MessageManager mm;
  auto* start =
      static_cast<uint8_t*>(mm.Allocate("stress/Tiny", kCapacity, kSkeleton));

  std::atomic<int> grants{0};
  std::atomic<int> overflows{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int e = 0; e < 8; ++e) {  // 32 attempts for 10 slots
        try {
          (void)mm.Expand(start, kGrant, 8);
          grants.fetch_add(1);
        } catch (const AlertError& error) {
          EXPECT_EQ(error.violation(), Violation::kArenaOverflow);
          overflows.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(grants.load(), 10);
  EXPECT_EQ(overflows.load(), kThreads * 8 - 10);
  EXPECT_LE(mm.SizeOf(start), kCapacity);
  mm.Release(start);
}

// The thread-local record cache must not resurrect a released record: after
// Release bumps the generation, an Expand through the stale address raises
// kUnmanagedMessage (nothing else was allocated, so the address is gone).
TEST(ManagerStress, ThreadCacheInvalidatedByRelease) {
  MessageManager mm;
  auto* start = static_cast<uint8_t*>(mm.Allocate("stress/Cache", 256, 32));
  ASSERT_NE(mm.Expand(start, 8, 8), nullptr);  // warms this thread's cache
  ASSERT_TRUE(mm.Release(start));
  try {
    mm.Expand(start, 8, 8);
    FAIL() << "expected AlertError";
  } catch (const AlertError& error) {
    EXPECT_EQ(error.violation(), Violation::kUnmanagedMessage);
  }
}

// Releasing one message must not invalidate grants already handed out for
// another, and the cache must follow the thread to the right record.
TEST(ManagerStress, CacheTracksInterleavedMessages) {
  MessageManager mm;
  auto* a = static_cast<uint8_t*>(mm.Allocate("stress/A", 256, 16));
  auto* b = static_cast<uint8_t*>(mm.Allocate("stress/B", 256, 16));
  EXPECT_EQ(mm.Expand(a, 8, 8), a + 16);
  EXPECT_EQ(mm.Expand(b, 8, 8), b + 16);  // cache switches records
  EXPECT_EQ(mm.Expand(a, 8, 8), a + 24);  // and back
  ASSERT_TRUE(mm.Release(a));
  EXPECT_EQ(mm.Expand(b, 8, 8), b + 24);  // b unaffected by a's release
  ASSERT_TRUE(mm.Release(b));
}

}  // namespace
}  // namespace sfm
