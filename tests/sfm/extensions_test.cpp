// Tests for the §4.4 discussion items implemented as extensions:
//   * receiver-side endianness conversion (§4.4.1)
//   * map-as-vector-of-key-value-pairs (§4.4.2, the ProtoBuf "map" type)
// plus the arena block pool the transport's receive path uses.
#include <gtest/gtest.h>

#include <cstring>

#include "paper_msgs/sfm/Image.h"
#include "rsf_msgs/sfm/Dictionary.h"
#include "sensor_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/PointCloud.h"
#include "sfm/endian_convert.h"
#include "sfm/sfm.h"

namespace {

using sensor_msgs::sfm::Image;

TEST(EndianConvert, IsInvolutive) {
  auto img = sfm::make_message<Image>();
  img->header.seq = 0x01020304;
  img->header.stamp = rsf::Time{0xAABBCCDD, 0x11223344};
  img->header.frame_id = "cam";
  img->height = 480;
  img->width = 640;
  img->encoding = "rgb8";
  img->step = 1920;
  img->data.resize(64);
  img->data[63] = 0x7F;

  const auto before = sfm::gmm().Publish(img.get());
  ASSERT_TRUE(before.has_value());
  std::vector<uint8_t> snapshot(before->data.get(),
                                before->data.get() + before->size);

  sfm::ConvertEndianness(*img, sfm::SwapDirection::kToForeign);
  // After one conversion the fixed fields are byte-swapped.
  EXPECT_EQ(img->height, rsf::ByteSwap<uint32_t>(480));
  sfm::ConvertEndianness(*img, sfm::SwapDirection::kFromForeign);

  const auto after = sfm::gmm().Publish(img.get());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(std::memcmp(snapshot.data(), after->data.get(), after->size), 0);
}

TEST(EndianConvert, ForeignMessageBecomesReadable) {
  // Build a message, byte-swap it (simulating a big-endian publisher whose
  // bytes arrived verbatim), then run the receiver-side conversion and
  // check every field reads correctly.
  auto img = sfm::make_message<Image>();
  img->header.seq = 77;
  img->header.frame_id = "left";
  img->height = 10;
  img->width = 20;
  img->encoding = "mono8";
  img->data.resize(5);
  for (size_t i = 0; i < 5; ++i) img->data[i] = static_cast<uint8_t>(i + 1);

  sfm::ConvertEndianness(*img, sfm::SwapDirection::kToForeign);
  sfm::ConvertEndianness(*img);  // default: kFromForeign, the receiver step

  EXPECT_EQ(img->header.seq, 77u);
  EXPECT_EQ(img->header.frame_id, "left");
  EXPECT_EQ(img->height, 10u);
  EXPECT_EQ(img->width, 20u);
  EXPECT_EQ(img->encoding, "mono8");
  ASSERT_EQ(img->data.size(), 5u);
  EXPECT_EQ(img->data[4], 5);
}

TEST(EndianConvert, NestedMessageVectors) {
  auto cloud = sfm::make_message<sensor_msgs::sfm::PointCloud>();
  cloud->points.resize(2);
  cloud->points[1].x = 1.5f;
  cloud->channels.resize(1);
  cloud->channels[0].name = "i";
  cloud->channels[0].values.resize(2);
  cloud->channels[0].values[1] = 0.25f;

  sfm::ConvertEndianness(*cloud, sfm::SwapDirection::kToForeign);
  sfm::ConvertEndianness(*cloud, sfm::SwapDirection::kFromForeign);
  EXPECT_FLOAT_EQ(cloud->points[1].x, 1.5f);
  EXPECT_EQ(cloud->channels[0].name, "i");
  EXPECT_FLOAT_EQ(cloud->channels[0].values[1], 0.25f);
}

TEST(MapExtension, DictionaryAsVectorOfPairs) {
  auto dict = sfm::make_message<rsf_msgs::sfm::Dictionary>();
  dict->header.frame_id = "params";
  dict->entries.resize(3);
  dict->entries[0].key = "encoding";
  dict->entries[0].value = "rgb8";
  dict->entries[1].key = "rate";
  dict->entries[1].value = "30";
  dict->entries[2].key = "camera";
  dict->entries[2].value = "left";

  // Lookup by key, the map access pattern.
  const auto find = [&](std::string_view key) -> std::string {
    for (const auto& entry : dict->entries) {
      if (entry.key == key) return std::string(entry.value);
    }
    return {};
  };
  EXPECT_EQ(find("rate"), "30");
  EXPECT_EQ(find("camera"), "left");
  EXPECT_EQ(find("missing"), "");

  // And it transmits like any SFM message: adopt the published bytes.
  const auto wire = sfm::gmm().Publish(dict.get());
  ASSERT_TRUE(wire.has_value());
  auto block = std::make_unique<uint8_t[]>(wire->size);
  std::memcpy(block.get(), wire->data.get(), wire->size);
  const uint8_t* start = sfm::gmm().AdoptReceived(
      "rsf_msgs/Dictionary", std::move(block), wire->size, wire->size);
  auto received = sfm::WrapReceived<rsf_msgs::sfm::Dictionary>(start);
  ASSERT_EQ(received->entries.size(), 3u);
  EXPECT_EQ(received->entries[1].key, "rate");
  EXPECT_EQ(received->entries[1].value, "30");
}

TEST(ArenaPool, BlocksAreRecycled) {
  sfm::TrimArenaPool();
  uint8_t* first = nullptr;
  {
    auto block = sfm::AcquireArenaBlock(1 << 16);
    first = block.get();
  }
  EXPECT_EQ(sfm::ArenaPoolBytes(), 1u << 16);
  {
    auto block = sfm::AcquireArenaBlock(1 << 16);
    EXPECT_EQ(block.get(), first) << "same block must be reused";
    EXPECT_EQ(sfm::ArenaPoolBytes(), 0u);
  }
  sfm::TrimArenaPool();
  EXPECT_EQ(sfm::ArenaPoolBytes(), 0u);
}

TEST(ArenaPool, DistinctCapacitiesDoNotMix) {
  sfm::TrimArenaPool();
  { auto a = sfm::AcquireArenaBlock(4096); }
  {
    auto b = sfm::AcquireArenaBlock(8192);
    // The pooled 4096 block must not satisfy an 8192 request.
    EXPECT_EQ(sfm::ArenaPoolBytes(), 4096u);
  }
  sfm::TrimArenaPool();
}

TEST(ArenaPool, SizeClassesRoundUpToPowersOfTwo) {
  // Floor: tiny requests share the smallest class.
  EXPECT_EQ(sfm::ArenaBlockClassSize(0), 256u);
  EXPECT_EQ(sfm::ArenaBlockClassSize(1), 256u);
  EXPECT_EQ(sfm::ArenaBlockClassSize(256), 256u);
  // Exact powers of two map to themselves.
  EXPECT_EQ(sfm::ArenaBlockClassSize(4096), 4096u);
  EXPECT_EQ(sfm::ArenaBlockClassSize(1u << 20), 1u << 20);
  // Anything else rounds up to the next power of two.
  EXPECT_EQ(sfm::ArenaBlockClassSize(257), 512u);
  EXPECT_EQ(sfm::ArenaBlockClassSize(4097), 8192u);
  EXPECT_EQ(sfm::ArenaBlockClassSize((1u << 20) + 1), 2u << 20);
}

TEST(ArenaPool, NearMissCapacitiesReusePooledBlocks) {
  sfm::TrimArenaPool();
  uint8_t* first = nullptr;
  {
    auto block = sfm::AcquireArenaBlock(4000);  // class 4096
    first = block.get();
  }
  EXPECT_EQ(sfm::ArenaPoolBytes(), 4096u);
  {
    // A slightly different request in the same class reuses the block —
    // the whole point of classing: a type whose largest-message estimate
    // drifted by a few bytes keeps hitting the warm pool.
    auto block = sfm::AcquireArenaBlock(4090);
    EXPECT_EQ(block.get(), first);
    EXPECT_EQ(sfm::ArenaPoolBytes(), 0u);
  }
  {
    // Crossing the class boundary allocates fresh (4097 → class 8192).
    auto block = sfm::AcquireArenaBlock(4097);
    EXPECT_EQ(sfm::ArenaPoolBytes(), 4096u) << "4096-class block left pooled";
  }
  sfm::TrimArenaPool();
}

TEST(ArenaPool, MessagesRoundTripThroughPool) {
  sfm::TrimArenaPool();
  const uint8_t* recycled = nullptr;
  {
    auto img = sfm::make_message<paper_msgs::sfm::Image>();
    img->data.resize(64);
    recycled = reinterpret_cast<const uint8_t*>(img.get());
  }
  {
    auto img = sfm::make_message<paper_msgs::sfm::Image>();
    EXPECT_EQ(reinterpret_cast<const uint8_t*>(img.get()), recycled);
    // Critically, the recycled (dirty) block must still present a clean
    // zeroed skeleton.
    EXPECT_TRUE(img->encoding.empty());
    EXPECT_EQ(img->data.size(), 0u);
    EXPECT_EQ(img->height, 0u);
  }
  sfm::TrimArenaPool();
}

}  // namespace
