// Tests of the full generated message set in SFM form: fixed arrays, deep
// nesting, vectors of stamped messages, property-style sweeps over sizes,
// and manager behaviour under concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "geometry_msgs/sfm/PoseStamped.h"
#include "nav_msgs/sfm/Odometry.h"
#include "nav_msgs/sfm/Path.h"
#include "paper_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/CameraInfo.h"
#include "sensor_msgs/sfm/Image.h"
#include "sensor_msgs/sfm/LaserScan.h"
#include "sensor_msgs/sfm/PointCloud2.h"
#include "stereo_msgs/sfm/DisparityImage.h"
#include "sfm/sfm.h"

namespace {

TEST(GeneratedSfm, PaperImageMatchesFig7ByteForByte) {
  auto img = sfm::make_message<paper_msgs::sfm::Image>();
  img->encoding = "rgb8";
  img->height = 10;
  img->width = 10;
  img->data.resize(300);

  const auto info = sfm::gmm().Find(img.get());
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->size, 0x14cu);  // the paper's whole-message size

  const uint8_t* bytes = info->start;
  const auto word = [&](size_t at) {
    uint32_t value;
    std::memcpy(&value, bytes + at, 4);
    return value;
  };
  EXPECT_EQ(word(0x0000), 8u);    // length of encoding (padded)
  EXPECT_EQ(word(0x0004), 20u);   // offset to encoding content
  EXPECT_EQ(word(0x0008), 10u);   // height
  EXPECT_EQ(word(0x000c), 10u);   // width
  EXPECT_EQ(word(0x0010), 300u);  // length of data
  EXPECT_EQ(word(0x0014), 12u);   // offset to data content
  EXPECT_EQ(std::memcmp(bytes + 0x0018, "rgb8\0\0\0\0", 8), 0);
}

TEST(GeneratedSfm, FixedArraysLiveInTheSkeleton) {
  auto info = sfm::make_message<sensor_msgs::sfm::CameraInfo>();
  for (size_t i = 0; i < 9; ++i) info->K[i] = static_cast<double>(i) * 1.5;
  info->P[11] = -2.0;
  info->roi.width = 64;
  info->roi.do_rectify = 1;

  // No arena expansion needed for fixed arrays: size stays the skeleton.
  const auto record = sfm::gmm().Find(info.get());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->size, sizeof(sensor_msgs::sfm::CameraInfo));

  EXPECT_DOUBLE_EQ(info->K[8], 12.0);
  EXPECT_DOUBLE_EQ(info->P[11], -2.0);
  EXPECT_EQ(info->roi.width, 64u);
}

TEST(GeneratedSfm, CameraInfoMixedFixedAndDynamic) {
  auto info = sfm::make_message<sensor_msgs::sfm::CameraInfo>();
  info->distortion_model = "plumb_bob";
  info->D.resize(5);
  info->D[4] = 0.125;
  info->K[0] = 525.0;
  EXPECT_EQ(info->distortion_model, "plumb_bob");
  EXPECT_DOUBLE_EQ(info->D[4], 0.125);
  EXPECT_DOUBLE_EQ(info->K[0], 525.0);
}

TEST(GeneratedSfm, DeeplyNestedOdometry) {
  auto odom = sfm::make_message<nav_msgs::sfm::Odometry>();
  odom->header.frame_id = "odom";
  odom->child_frame_id = "base_link";
  odom->pose.pose.position.x = 1.5;
  odom->pose.pose.orientation.w = 1.0;
  odom->pose.covariance[35] = 0.01;
  odom->twist.twist.linear.x = 0.4;
  odom->twist.covariance[0] = 0.02;

  EXPECT_EQ(odom->child_frame_id, "base_link");
  EXPECT_DOUBLE_EQ(odom->pose.pose.position.x, 1.5);
  EXPECT_DOUBLE_EQ(odom->pose.covariance[35], 0.01);
  EXPECT_DOUBLE_EQ(odom->twist.twist.linear.x, 0.4);
}

TEST(GeneratedSfm, DisparityImageNestedImageGrowsOuterArena) {
  auto disparity = sfm::make_message<stereo_msgs::sfm::DisparityImage>();
  disparity->image.height = 480;
  disparity->image.width = 640;
  disparity->image.encoding = "32FC1";
  disparity->image.data.resize(640 * 480 * 4);
  disparity->f = 525.0f;
  disparity->valid_window.width = 640;

  const auto record = sfm::gmm().Find(disparity.get());
  ASSERT_TRUE(record.has_value());
  EXPECT_GT(record->size,
            sizeof(stereo_msgs::sfm::DisparityImage) + 640u * 480u * 4u - 1);
  EXPECT_EQ(disparity->image.encoding, "32FC1");
  disparity->image.data[0] = 0x3F;
  EXPECT_EQ(disparity->image.data[0], 0x3F);
}

TEST(GeneratedSfm, PathWithVectorOfStampedPoses) {
  auto path = sfm::make_message<nav_msgs::sfm::Path>();
  path->header.frame_id = "map";
  path->poses.resize(16);
  for (size_t i = 0; i < 16; ++i) {
    path->poses[i].header.seq = static_cast<uint32_t>(i);
    path->poses[i].header.frame_id = "map";  // nested string per element
    path->poses[i].pose.position.x = static_cast<double>(i) * 0.5;
    path->poses[i].pose.orientation.w = 1.0;
  }
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(path->poses[i].header.seq, i);
    EXPECT_EQ(path->poses[i].header.frame_id, "map");
    EXPECT_DOUBLE_EQ(path->poses[i].pose.position.x, 0.5 * i);
  }
}

TEST(GeneratedSfm, PointCloud2FieldsAndData) {
  auto cloud = sfm::make_message<sensor_msgs::sfm::PointCloud2>();
  cloud->fields.resize(3);
  cloud->fields[0].name = "x";
  cloud->fields[0].datatype = sensor_msgs::sfm::PointField::FLOAT32;
  cloud->fields[1].name = "y";
  cloud->fields[2].name = "z";
  cloud->point_step = 12;
  cloud->data.resize(120);

  EXPECT_EQ(cloud->fields[0].name, "x");
  EXPECT_EQ(cloud->fields[0].datatype, 7);  // the IDL constant
  EXPECT_EQ(cloud->fields[2].name, "z");
  EXPECT_EQ(cloud->data.size(), 120u);
}

TEST(GeneratedSfm, ConstantsExistOnBothVariants) {
  EXPECT_EQ(sensor_msgs::sfm::PointField::INT8, 1);
  EXPECT_EQ(sensor_msgs::sfm::PointField::FLOAT64, 8);
}

class SfmPayloadSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SfmPayloadSweep, WireRoundTripPreservesEveryByte) {
  const size_t bytes = GetParam();
  auto src = sfm::make_message<sensor_msgs::sfm::Image>();
  src->encoding = "rgb8";
  src->data.resize(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    src->data[i] = static_cast<uint8_t>(i * 131 + 7);
  }

  const auto wire = sfm::gmm().Publish(src.get());
  ASSERT_TRUE(wire.has_value());
  auto block = std::make_unique<uint8_t[]>(wire->size);
  std::memcpy(block.get(), wire->data.get(), wire->size);
  const uint8_t* start = sfm::gmm().AdoptReceived(
      "sensor_msgs/Image", std::move(block), wire->size, wire->size);
  auto received = sfm::WrapReceived<sensor_msgs::sfm::Image>(start);

  ASSERT_EQ(received->data.size(), bytes);
  for (size_t i = 0; i < bytes; ++i) {
    ASSERT_EQ(received->data[i], static_cast<uint8_t>(i * 131 + 7)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SfmPayloadSweep,
                         ::testing::Values(0, 1, 3, 4, 1023, 4096, 65536,
                                           1 << 20));

class SfmStringSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SfmStringSweep, PaddingInvariantsHold) {
  const size_t length = GetParam();
  const std::string content(length, 'x');
  auto msg = sfm::make_message<sensor_msgs::sfm::Image>();
  msg->encoding = content;
  EXPECT_EQ(msg->encoding.size(), length);
  EXPECT_EQ(std::string(msg->encoding), content);
  // Wire length covers content + NUL, rounded to 4.
  EXPECT_EQ(msg->encoding.wire_length(), ((length + 1 + 3) / 4) * 4);
  EXPECT_EQ(msg->encoding.wire_length() % 4, 0u);
  EXPECT_GE(msg->encoding.wire_length(), length + 1);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SfmStringSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 31, 255));

TEST(ManagerConcurrency, ParallelAllocateExpandRelease) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  const size_t live_before = sfm::gmm().LiveCount();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto msg = sfm::make_message<paper_msgs::sfm::Image>();
        msg->encoding = (t % 2 == 0) ? "rgb8" : "mono16";
        msg->data.resize(64 + static_cast<size_t>(i % 7) * 16);
        msg->data[0] = static_cast<uint8_t>(t);
        if (i % 3 == 0) {
          auto wire = sfm::gmm().Publish(msg.get());
          ASSERT_TRUE(wire.has_value());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(sfm::gmm().LiveCount(), live_before);
}

TEST(GeneratedSfm, SkeletonSizesMatchLayoutCalculator) {
  // These mirror the static_asserts baked into each generated header; a few
  // spot checks here keep the invariant visible in the test log.
  EXPECT_EQ(sizeof(paper_msgs::sfm::Image), 24u);
  EXPECT_EQ(sizeof(std_msgs::sfm::Header), 20u);
  EXPECT_EQ(sizeof(sensor_msgs::sfm::Image), 52u);
  EXPECT_EQ(sizeof(geometry_msgs::sfm::PoseStamped),
            sizeof(std_msgs::sfm::Header) + 7 * 8 + 4 /*align pad*/);
}

}  // namespace
