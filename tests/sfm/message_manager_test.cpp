// Unit tests for sfm::MessageManager — arena registration, interior-address
// lookup, expansion, publish aliasing, and the life-cycle state machine of
// paper §4.2 (Figs. 8 and 9).
#include "sfm/message_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "sfm/alert.h"

namespace sfm {
namespace {

TEST(MessageManager, AllocateRegistersZeroedSkeleton) {
  MessageManager mm;
  void* start = mm.Allocate("test/Msg", 256, 32);
  ASSERT_NE(start, nullptr);

  const auto info = mm.Find(start);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->capacity, 256u);
  EXPECT_EQ(info->size, 32u);
  EXPECT_EQ(info->state, MessageState::kAllocated);
  EXPECT_STREQ(info->datatype.c_str(), "test/Msg");

  const auto* bytes = static_cast<const uint8_t*>(start);
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(bytes[i], 0) << i;

  EXPECT_TRUE(mm.Release(start));
  EXPECT_EQ(mm.LiveCount(), 0u);
}

TEST(MessageManager, FindByInteriorAddress) {
  MessageManager mm;
  auto* start = static_cast<uint8_t*>(mm.Allocate("test/Msg", 128, 16));
  EXPECT_TRUE(mm.Find(start + 1).has_value());
  EXPECT_TRUE(mm.Find(start + 127).has_value());
  EXPECT_FALSE(mm.Find(start + 128).has_value());
  mm.Release(start);
}

TEST(MessageManager, FindDistinguishesMultipleArenas) {
  MessageManager mm;
  void* a = mm.Allocate("test/A", 64, 8);
  void* b = mm.Allocate("test/B", 64, 8);
  EXPECT_EQ(mm.Find(a)->start, static_cast<uint8_t*>(a));
  EXPECT_EQ(mm.Find(b)->start, static_cast<uint8_t*>(b));
  EXPECT_EQ(mm.LiveCount(), 2u);
  mm.Release(a);
  mm.Release(b);
}

TEST(MessageManager, ExpandGrowsWholeMessage) {
  MessageManager mm;
  auto* start = static_cast<uint8_t*>(mm.Allocate("test/Msg", 256, 24));
  // A field at offset 8 requests 100 bytes.
  void* payload = mm.Expand(start + 8, 100, 4);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload, start + 24);  // appended at the current end
  EXPECT_EQ(mm.SizeOf(start), 124u);

  // The next request is aligned and appended after the first.
  void* second = mm.Expand(start + 16, 8, 8);
  EXPECT_EQ(second, start + 128);  // 124 aligned up to 8
  EXPECT_EQ(mm.SizeOf(start), 136u);
  mm.Release(start);
}

TEST(MessageManager, ExpandZeroesGrantedRegion) {
  MessageManager mm;
  auto* start = static_cast<uint8_t*>(mm.Allocate("test/Msg", 256, 8));
  std::memset(start + 8, 0xAB, 248);  // dirty the arena tail
  auto* payload = static_cast<uint8_t*>(mm.Expand(start, 64, 4));
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(payload[i], 0) << i;
  mm.Release(start);
}

TEST(MessageManager, ExpandOnUnknownAddressRaisesUnmanagedAlert) {
  MessageManager mm;
  uint8_t stack_buffer[64];
  EXPECT_THROW(mm.Expand(stack_buffer, 8, 4), AlertError);
  try {
    mm.Expand(stack_buffer, 8, 4);
    FAIL() << "expected AlertError";
  } catch (const AlertError& e) {
    EXPECT_EQ(e.violation(), Violation::kUnmanagedMessage);
  }
}

TEST(MessageManager, ExpandOverCapacityRaisesOverflowAlert) {
  MessageManager mm;
  void* start = mm.Allocate("test/Msg", 64, 16);
  try {
    mm.Expand(start, 64, 4);  // 16 + 64 > 64
    FAIL() << "expected AlertError";
  } catch (const AlertError& e) {
    EXPECT_EQ(e.violation(), Violation::kArenaOverflow);
  }
  mm.Release(start);
}

TEST(MessageManager, PublishAliasesBufferAndMarksPublished) {
  MessageManager mm;
  void* start = mm.Allocate("test/Msg", 128, 16);
  mm.Expand(start, 32, 4);

  const auto buffer = mm.Publish(start);
  ASSERT_TRUE(buffer.has_value());
  EXPECT_EQ(buffer->size, 48u);
  EXPECT_EQ(buffer->data.get(), start);
  EXPECT_EQ(mm.Find(start)->state, MessageState::kPublished);

  // Fig. 8: developer releases the object while the transport still holds
  // the buffer pointer — the memory must survive.
  EXPECT_TRUE(mm.Release(start));
  EXPECT_EQ(mm.LiveCount(), 0u);
  const auto* bytes = buffer->data.get();
  EXPECT_EQ(bytes[0], 0);  // still readable: block alive via buffer pointer
}

TEST(MessageManager, PublishUnknownReturnsNullopt) {
  MessageManager mm;
  int dummy = 0;
  EXPECT_FALSE(mm.Publish(&dummy).has_value());
}

TEST(MessageManager, ReleaseBeforePublishFreesInstantly) {
  MessageManager mm;
  void* start = mm.Allocate("test/Msg", 128, 16);
  EXPECT_TRUE(mm.Release(start));
  EXPECT_FALSE(mm.Find(start).has_value());
  EXPECT_FALSE(mm.Release(start)) << "double release must be rejected";
}

TEST(MessageManager, AdoptReceivedEntersPublishedState) {
  MessageManager mm;
  auto block = std::make_unique<uint8_t[]>(128);
  std::memset(block.get(), 0x5A, 64);
  const uint8_t* start = mm.AdoptReceived("test/Msg", std::move(block), 128, 64);

  const auto info = mm.Find(start);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, MessageState::kPublished);  // paper Fig. 9
  EXPECT_EQ(info->size, 64u);
  EXPECT_EQ(start[10], 0x5A);

  // Receiver-side code may still grow the message (e.g. assign an unset
  // string field) within the adopted block's capacity.
  void* extra = mm.Expand(start + 4, 16, 4);
  EXPECT_EQ(extra, start + 64);
  EXPECT_TRUE(mm.Release(const_cast<uint8_t*>(start)));
}

TEST(MessageManager, TryWholeCopyTopLevel) {
  MessageManager mm;
  auto* src = static_cast<uint8_t*>(mm.Allocate("test/Msg", 256, 16));
  std::memset(src, 7, 16);
  mm.Expand(src, 32, 4);
  auto* dst = static_cast<uint8_t*>(mm.Allocate("test/Msg", 256, 16));

  EXPECT_TRUE(mm.TryWholeCopy(dst, src, 16));
  EXPECT_EQ(mm.SizeOf(dst), 48u);
  EXPECT_EQ(dst[0], 7);

  // Interior destination => nested-field assignment => caller copies.
  EXPECT_FALSE(mm.TryWholeCopy(dst + 4, src, 16));
  // Interior source likewise.
  EXPECT_FALSE(mm.TryWholeCopy(dst, src + 4, 16));
  mm.Release(src);
  mm.Release(dst);
}

TEST(MessageManager, TryWholeCopyFromUnregisteredCopiesSkeletonOnly) {
  MessageManager mm;
  uint8_t stack_skeleton[16];
  std::memset(stack_skeleton, 3, sizeof(stack_skeleton));
  auto* dst = static_cast<uint8_t*>(mm.Allocate("test/Msg", 64, 16));
  mm.Expand(dst, 8, 4);  // dst had grown; copy must reset it

  EXPECT_TRUE(mm.TryWholeCopy(dst, stack_skeleton, 16));
  EXPECT_EQ(mm.SizeOf(dst), 16u);
  EXPECT_EQ(dst[15], 3);
  mm.Release(dst);
}

TEST(MessageManager, TryWholeCopyOverflowRaises) {
  MessageManager mm;
  auto* src = static_cast<uint8_t*>(mm.Allocate("test/Msg", 1024, 16));
  mm.Expand(src, 512, 4);
  auto* dst = static_cast<uint8_t*>(mm.Allocate("test/Msg", 64, 16));
  EXPECT_THROW(mm.TryWholeCopy(dst, src, 16), AlertError);
  mm.Release(src);
  mm.Release(dst);
}

TEST(MessageManager, StatsCountOperations) {
  MessageManager mm;
  void* a = mm.Allocate("test/Msg", 128, 16);
  mm.Expand(a, 8, 4);
  mm.Publish(a);
  mm.Release(a);
  const auto stats = mm.Stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.expansions, 1u);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.releases, 1u);
}

TEST(ArenaCapacity, RuntimeOverrideWinsAndClears) {
  EXPECT_EQ(ArenaCapacityFor("x/Y", 1000), 1000u);
  SetArenaCapacity("x/Y", 4096);
  EXPECT_EQ(ArenaCapacityFor("x/Y", 1000), 4096u);
  SetArenaCapacity("x/Y", 0);
  EXPECT_EQ(ArenaCapacityFor("x/Y", 1000), 1000u);
}

}  // namespace
}  // namespace sfm
