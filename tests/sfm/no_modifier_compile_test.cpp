// Negative-compilation tests for the No Modifier Assumption (§4.3.3): the
// paper enforces it by NOT implementing the modifier interfaces, so
// `push_back` & co. must be COMPILE errors.  Each case invokes the real
// compiler (-fsyntax-only) on a snippet and expects failure; a control
// snippet proves the harness itself compiles cleanly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef RSF_CXX_COMPILER
#define RSF_CXX_COMPILER "c++"
#endif
#ifndef RSF_SOURCE_DIR
#define RSF_SOURCE_DIR "."
#endif
#ifndef RSF_GEN_DIR
#define RSF_GEN_DIR "."
#endif

namespace {

/// Compiles `body` inside a function that has an SFM Image `msg`; returns
/// true if the snippet compiles.
bool Compiles(const std::string& body) {
  // Unique per process: ctest runs each TEST as its own process, possibly
  // in parallel, and concurrent cases must not clobber each other's snippet.
  const std::string path = std::string(::testing::TempDir()) +
                           "/no_modifier_snippet_" +
                           std::to_string(::getpid()) + ".cpp";
  {
    std::ofstream out(path);
    out << "#include \"sensor_msgs/sfm/Image.h\"\n"
        << "void snippet(sensor_msgs::sfm::Image& msg, uint8_t byte) {\n"
        << "  (void)msg; (void)byte;\n"
        << "  " << body << "\n"
        << "}\n";
  }
  const std::string command = std::string(RSF_CXX_COMPILER) +
                              " -std=c++20 -fsyntax-only -I" RSF_SOURCE_DIR
                              "/src -I" RSF_GEN_DIR " " +
                              path + " 2>/dev/null";
  return std::system(command.c_str()) == 0;
}

TEST(NoModifierAssumption, ControlSnippetCompiles) {
  ASSERT_TRUE(Compiles("msg.data.resize(10); msg.data[0] = byte;"))
      << "harness broken: the legal pattern must compile";
}

TEST(NoModifierAssumption, PushBackIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.push_back(byte);"));
}

TEST(NoModifierAssumption, PopBackIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.pop_back();"));
}

TEST(NoModifierAssumption, ClearIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.clear();"));
}

TEST(NoModifierAssumption, ReserveIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.reserve(100);"));
}

TEST(NoModifierAssumption, InsertIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.insert(msg.data.begin(), byte);"));
}

TEST(NoModifierAssumption, EraseIsACompileError) {
  EXPECT_FALSE(Compiles("msg.data.erase(msg.data.begin());"));
}

TEST(NoModifierAssumption, RawSkeletonCopyIsACompileError) {
  // Copying a lone sfm::string/vector would carry a dangling relative
  // offset into another arena; construction-by-copy is deleted.
  EXPECT_FALSE(Compiles("sfm::vector<uint8_t> loose = msg.data;"));
  EXPECT_FALSE(Compiles("sfm::string loose = msg.encoding;"));
}

}  // namespace
