// Converter tests: lexer behaviour, assumption checking on the paper's
// three failure cases (Figs. 19-21), alias/namespace resolution, the
// Fig. 11 heap rewrite, and the Table 1 corpus reproduction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "converter/analyzer.h"
#include "converter/checker.h"
#include "converter/corpus_synth.h"
#include "converter/lexer.h"
#include "converter/rewriter.h"
#include "idl/parser.h"
#include "idl/registry.h"

namespace {

using namespace rsf::conv;

/// Registry mirroring the real message set (subset used by the tests).
const rsf::idl::SpecRegistry& Registry() {
  static const auto* registry = [] {
    auto* r = new rsf::idl::SpecRegistry();
    const auto add = [&](const char* pkg, const char* name, const char* text) {
      auto spec = rsf::idl::ParseMessage(pkg, name, text);
      SFM_CHECK(spec.ok());
      SFM_CHECK(r->Add(*spec).ok());
    };
    add("std_msgs", "Header", "uint32 seq\ntime stamp\nstring frame_id\n");
    add("geometry_msgs", "Point32", "float32 x\nfloat32 y\nfloat32 z\n");
    add("sensor_msgs", "Image",
        "Header header\nuint32 height\nuint32 width\nstring encoding\n"
        "uint8 is_bigendian\nuint32 step\nuint8[] data\n");
    add("sensor_msgs", "CompressedImage",
        "Header header\nstring format\nuint8[] data\n");
    add("sensor_msgs", "ChannelFloat32", "string name\nfloat32[] values\n");
    add("sensor_msgs", "PointCloud",
        "Header header\ngeometry_msgs/Point32[] points\n"
        "ChannelFloat32[] channels\n");
    add("sensor_msgs", "PointCloud2",
        "Header header\nuint32 height\nuint32 width\nbool is_bigendian\n"
        "uint32 point_step\nuint32 row_step\nuint8[] data\nbool is_dense\n");
    add("sensor_msgs", "LaserScan",
        "Header header\nfloat32 angle_min\nfloat32 angle_max\n"
        "float32[] ranges\nfloat32[] intensities\n");
    add("sensor_msgs", "RegionOfInterest",
        "uint32 x_offset\nuint32 y_offset\nuint32 height\nuint32 width\n"
        "bool do_rectify\n");
    add("stereo_msgs", "DisparityImage",
        "Header header\nsensor_msgs/Image image\nfloat32 f\nfloat32 T\n"
        "sensor_msgs/RegionOfInterest valid_window\n");
    return r;
  }();
  return *registry;
}

const TypeTable& Types() {
  static const TypeTable table = TypeTable::FromRegistry(Registry());
  return table;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ---------------- lexer ----------------

TEST(Lexer, TokenizesIdentifiersPunctAndStrings) {
  const auto tokens = Tokenize("img->data.resize(10 * 10 * 3); // px\n");
  std::vector<std::string> texts;
  for (const auto& t : tokens) texts.push_back(t.text);
  const std::vector<std::string> expected = {
      "img", "->", "data", ".", "resize", "(", "10", "*", "10",
      "*",   "3",  ")",    ";", ""};
  EXPECT_EQ(texts, expected);
}

TEST(Lexer, SkipsCommentsAndPreprocessor) {
  const auto tokens =
      Tokenize("#include <x>\n/* block\ncomment */ a // line\nb");
  ASSERT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 4);
}

TEST(Lexer, HandlesStringEscapes) {
  const auto tokens = Tokenize(R"(s = "a\"b";)");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, R"("a\"b")");
}

// ---------------- assumption checking ----------------

TEST(Analyzer, CleanPublisherIsApplicable) {
  const auto report = AnalyzeSource(R"cpp(
    #include "sensor_msgs/Image.h"
    void publish(ros::Publisher& pub) {
      sensor_msgs::Image img;
      img.encoding = "rgb8";
      img.height = 10;
      img.width = 10;
      img.data.resize(10 * 10 * 3);
      pub.publish(img);
    }
  )cpp",
                                    Types());
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.Uses("sensor_msgs/Image"));
  EXPECT_TRUE(report.Applicable("sensor_msgs/Image"));
  ASSERT_EQ(report.stack_decls.size(), 1u);
  EXPECT_EQ(report.stack_decls[0].variable, "img");
}

TEST(Analyzer, DirectStringReassignmentIsFlagged) {
  const auto report = AnalyzeSource(R"cpp(
    void f() {
      sensor_msgs::Image img;
      img.encoding = "rgb8";
      img.encoding = "mono8";
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kStringReassignment);
  EXPECT_EQ(report.findings[0].path, "img.encoding");
  EXPECT_EQ(report.findings[0].message_class, "sensor_msgs/Image");
}

TEST(Analyzer, DoubleResizeIsFlagged) {
  const auto report = AnalyzeSource(R"cpp(
    void f(int n) {
      sensor_msgs::LaserScan scan;
      scan.ranges.resize(n);
      scan.ranges.resize(2 * n);
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kVectorMultiResize);
}

TEST(Analyzer, ResizeZeroFirstIsExempt) {
  const auto report = AnalyzeSource(R"cpp(
    void f(int n) {
      sensor_msgs::LaserScan scan;
      scan.ranges.resize(0);
      scan.ranges.resize(n);
    }
  )cpp",
                                    Types());
  EXPECT_TRUE(report.findings.empty()) << report.findings[0].note;
}

TEST(Analyzer, ModifierCallIsFlagged) {
  const auto report = AnalyzeSource(R"cpp(
    void f(sensor_msgs::PointCloud& cloud) {
      geometry_msgs::Point32 pt;
      cloud.points.push_back(pt);
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kModifierCall);
  EXPECT_EQ(report.findings[0].message_class, "sensor_msgs/PointCloud");
}

TEST(Analyzer, UsingNamespaceResolvesBareNames) {
  const auto report = AnalyzeSource(R"cpp(
    using namespace sensor_msgs;
    void f() {
      Image img;
      img.encoding = "a";
      img.encoding = "b";
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].message_class, "sensor_msgs/Image");
}

TEST(Analyzer, TypedefAliasesResolve) {
  const auto report = AnalyzeSource(R"cpp(
    typedef sensor_msgs::LaserScan Scan;
    void f(int n) {
      Scan s;
      s.ranges.resize(n);
      s.ranges.resize(n + 1);
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].message_class, "sensor_msgs/LaserScan");
}

TEST(Analyzer, UsingAliasResolves) {
  const auto report = AnalyzeSource(R"cpp(
    using Cloud = sensor_msgs::PointCloud;
    void f(Cloud& out) {
      out.points.resize(10);
    }
  )cpp",
                                    Types());
  // Single resize, but through an output reference parameter: possible
  // violation, counted as a failure (paper §5.4).
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kVectorMultiResize);
}

TEST(Analyzer, NestedStringFieldsAreTracked) {
  const auto report = AnalyzeSource(R"cpp(
    void f() {
      sensor_msgs::Image img;
      img.header.frame_id = "a";
      img.header.frame_id = "b";
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].path, "img.header.frame_id");
}

TEST(Analyzer, SubtreeAssignThenFieldWriteIsReassignment) {
  const auto report = AnalyzeSource(R"cpp(
    void f(const std_msgs::Header& src) {
      sensor_msgs::Image img;
      img.header = src;
      img.header.frame_id = "patched";
    }
  )cpp",
                                    Types());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, FindingKind::kStringReassignment);
}

TEST(Analyzer, ScopeEndsDropVariables) {
  const auto report = AnalyzeSource(R"cpp(
    void f() {
      { sensor_msgs::Image img; img.encoding = "x"; }
      { sensor_msgs::Image img; img.encoding = "y"; }
    }
  )cpp",
                                    Types());
  // Distinct scopes: each string assigned once.
  EXPECT_TRUE(report.findings.empty());
}

// ---------------- the paper's failure cases ----------------

TEST(Analyzer, PaperFailureCase1HelperThenPatch) {
  const auto report =
      AnalyzeSource(ReadFile("corpus/failure_case_1_image_rotate.cpp"),
                    Types());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].kind, FindingKind::kStringReassignment);
  EXPECT_EQ(report.findings[0].path, "out_img.header.frame_id");
  EXPECT_FALSE(report.Applicable("sensor_msgs/Image"));
}

TEST(Analyzer, PaperFailureCase1RewrittenIsClean) {
  const auto report = AnalyzeSource(
      ReadFile("corpus/failure_case_1_rewritten.cpp"), Types());
  EXPECT_TRUE(report.findings.empty())
      << report.findings[0].path << ": " << report.findings[0].note;
}

TEST(Analyzer, PaperFailureCase2OutputParamResize) {
  const auto report = AnalyzeSource(
      ReadFile("corpus/failure_case_2_stereo_processor.cpp"), Types());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].kind, FindingKind::kVectorMultiResize);
  EXPECT_EQ(report.findings[0].path, "disparity.image.data");
  EXPECT_EQ(report.findings[0].message_class, "stereo_msgs/DisparityImage");
}

TEST(Analyzer, PaperFailureCase3PushBack) {
  const auto report = AnalyzeSource(
      ReadFile("corpus/failure_case_3_point_cloud.cpp"), Types());
  ASSERT_FALSE(report.findings.empty());
  bool has_modifier = false;
  for (const auto& finding : report.findings) {
    if (finding.kind == FindingKind::kModifierCall) has_modifier = true;
    // resize(0) must NOT be flagged.
    EXPECT_NE(finding.kind, FindingKind::kVectorMultiResize)
        << finding.path;
  }
  EXPECT_TRUE(has_modifier);
}

TEST(Analyzer, PaperFailureCase3RewrittenIsClean) {
  const auto report = AnalyzeSource(
      ReadFile("corpus/failure_case_3_rewritten.cpp"), Types());
  EXPECT_TRUE(report.findings.empty())
      << report.findings[0].path << ": " << report.findings[0].note;
}

// ---------------- the Fig. 11 rewrite ----------------

TEST(Rewriter, ConvertsStackDeclarationToHeap) {
  const std::string source = R"cpp(
void f(ros::Publisher& pub) {
  sensor_msgs::Image img;
  img.encoding = "8UC3";
  img.height = 10;
  img.data.resize(10 * 10 * 3);
  pub.publish(img);
}
)cpp";
  const auto report = AnalyzeSource(source, Types());
  ASSERT_EQ(report.stack_decls.size(), 1u);

  const auto result = RewriteStackDeclarations(source, report);
  EXPECT_EQ(result.rewritten, 1u);
  EXPECT_NE(result.source.find("std::shared_ptr<sensor_msgs::Image> "
                               "ptmp_img(new sensor_msgs::Image);"),
            std::string::npos);
  EXPECT_NE(result.source.find("sensor_msgs::Image & img = *ptmp_img;"),
            std::string::npos);
  // The following statements are untouched.
  EXPECT_NE(result.source.find("img.encoding = \"8UC3\";"), std::string::npos);
}

TEST(Rewriter, IsIdempotent) {
  const std::string source = "void f() { sensor_msgs::Image img; }";
  const auto once =
      RewriteStackDeclarations(source, AnalyzeSource(source, Types()));
  const auto twice = RewriteStackDeclarations(
      once.source, AnalyzeSource(once.source, Types()));
  EXPECT_EQ(twice.rewritten, 0u);
  EXPECT_EQ(twice.source, once.source);
}

TEST(Rewriter, PreservesConstructorArguments) {
  const std::string source = "void f() { sensor_msgs::Image img(make()); }";
  const auto report = AnalyzeSource(source, Types());
  ASSERT_EQ(report.stack_decls.size(), 1u);
  const auto result = RewriteStackDeclarations(source, report);
  EXPECT_NE(result.source.find("new sensor_msgs::Image(make())"),
            std::string::npos);
}

TEST(Rewriter, RewritesMultipleDeclarations) {
  const std::string source = R"cpp(
void f() {
  sensor_msgs::Image a;
  sensor_msgs::PointCloud b;
}
)cpp";
  const auto result =
      RewriteStackDeclarations(source, AnalyzeSource(source, Types()));
  EXPECT_EQ(result.rewritten, 2u);
  EXPECT_NE(result.source.find("ptmp_a"), std::string::npos);
  EXPECT_NE(result.source.find("ptmp_b"), std::string::npos);
}

// ---------------- Table 1 reproduction ----------------

TEST(Table1, SynthesizedCorpusReproducesPaperCounts) {
  const std::string dir = "synth_corpus_test";
  ASSERT_TRUE(SynthesizeCorpus(dir).ok());

  auto reports = AnalyzeDirectory(dir, Types());
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports->size(), 103u);  // 49+7+14+15+18

  const auto rows = AggregateTable(
      *reports, {"sensor_msgs/Image", "sensor_msgs/CompressedImage",
                 "sensor_msgs/PointCloud", "sensor_msgs/PointCloud2",
                 "sensor_msgs/LaserScan"});
  const auto expected = Table1Expected();
  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].message_class, expected[i].message_class);
    EXPECT_EQ(rows[i].total, expected[i].total) << rows[i].message_class;
    EXPECT_EQ(rows[i].applicable, expected[i].applicable)
        << rows[i].message_class;
    EXPECT_EQ(rows[i].string_reassignment, expected[i].string_reassignment)
        << rows[i].message_class;
    EXPECT_EQ(rows[i].vector_multi_resize, expected[i].vector_multi_resize)
        << rows[i].message_class;
    EXPECT_EQ(rows[i].other_methods, expected[i].other_methods)
        << rows[i].message_class;
  }
  std::filesystem::remove_all(dir);
}

TEST(Table1, HandWrittenCorpusVerdicts) {
  auto reports = AnalyzeDirectory("corpus", Types());
  ASSERT_TRUE(reports.ok());
  EXPECT_GE(reports->size(), 7u);

  size_t failures = 0;
  for (const auto& [file, report] : *reports) {
    if (!report.findings.empty()) ++failures;
  }
  EXPECT_EQ(failures, 3u);  // exactly the three paper failure cases
}

}  // namespace
