file(REMOVE_RECURSE
  "CMakeFiles/sfmgen.dir/sfmgen/main.cpp.o"
  "CMakeFiles/sfmgen.dir/sfmgen/main.cpp.o.d"
  "sfmgen"
  "sfmgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
