# Empty dependencies file for sfmgen.
# This may be replaced when dependencies are built.
