# Empty custom commands generated dependencies file for rsf_msgs_gen.
# This may be replaced when dependencies are built.
