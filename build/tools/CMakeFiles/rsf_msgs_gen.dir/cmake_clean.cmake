file(REMOVE_RECURSE
  "../gen_msgs/.stamp"
  "CMakeFiles/rsf_msgs_gen"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/rsf_msgs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
