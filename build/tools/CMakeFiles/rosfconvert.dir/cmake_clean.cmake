file(REMOVE_RECURSE
  "CMakeFiles/rosfconvert.dir/rosfconvert/main.cpp.o"
  "CMakeFiles/rosfconvert.dir/rosfconvert/main.cpp.o.d"
  "rosfconvert"
  "rosfconvert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rosfconvert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
