# Empty dependencies file for rosfconvert.
# This may be replaced when dependencies are built.
