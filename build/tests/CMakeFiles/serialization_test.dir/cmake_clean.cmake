file(REMOVE_RECURSE
  "CMakeFiles/serialization_test.dir/serialization/all_messages_test.cpp.o"
  "CMakeFiles/serialization_test.dir/serialization/all_messages_test.cpp.o.d"
  "CMakeFiles/serialization_test.dir/serialization/baselines_test.cpp.o"
  "CMakeFiles/serialization_test.dir/serialization/baselines_test.cpp.o.d"
  "CMakeFiles/serialization_test.dir/serialization/msgpack_test.cpp.o"
  "CMakeFiles/serialization_test.dir/serialization/msgpack_test.cpp.o.d"
  "CMakeFiles/serialization_test.dir/serialization/ros1_test.cpp.o"
  "CMakeFiles/serialization_test.dir/serialization/ros1_test.cpp.o.d"
  "serialization_test"
  "serialization_test.pdb"
  "serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
