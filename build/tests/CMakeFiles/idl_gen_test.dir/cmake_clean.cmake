file(REMOVE_RECURSE
  "CMakeFiles/idl_gen_test.dir/idl/generate_all_test.cpp.o"
  "CMakeFiles/idl_gen_test.dir/idl/generate_all_test.cpp.o.d"
  "CMakeFiles/idl_gen_test.dir/idl/idl_gen_test.cpp.o"
  "CMakeFiles/idl_gen_test.dir/idl/idl_gen_test.cpp.o.d"
  "idl_gen_test"
  "idl_gen_test.pdb"
  "idl_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idl_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
