# Empty compiler generated dependencies file for idl_gen_test.
# This may be replaced when dependencies are built.
