file(REMOVE_RECURSE
  "CMakeFiles/sfm_test.dir/sfm/extensions_test.cpp.o"
  "CMakeFiles/sfm_test.dir/sfm/extensions_test.cpp.o.d"
  "CMakeFiles/sfm_test.dir/sfm/generated_types_test.cpp.o"
  "CMakeFiles/sfm_test.dir/sfm/generated_types_test.cpp.o.d"
  "CMakeFiles/sfm_test.dir/sfm/message_manager_test.cpp.o"
  "CMakeFiles/sfm_test.dir/sfm/message_manager_test.cpp.o.d"
  "CMakeFiles/sfm_test.dir/sfm/no_modifier_compile_test.cpp.o"
  "CMakeFiles/sfm_test.dir/sfm/no_modifier_compile_test.cpp.o.d"
  "CMakeFiles/sfm_test.dir/sfm/skeleton_types_test.cpp.o"
  "CMakeFiles/sfm_test.dir/sfm/skeleton_types_test.cpp.o.d"
  "sfm_test"
  "sfm_test.pdb"
  "sfm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
