
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sfm/extensions_test.cpp" "tests/CMakeFiles/sfm_test.dir/sfm/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/sfm_test.dir/sfm/extensions_test.cpp.o.d"
  "/root/repo/tests/sfm/generated_types_test.cpp" "tests/CMakeFiles/sfm_test.dir/sfm/generated_types_test.cpp.o" "gcc" "tests/CMakeFiles/sfm_test.dir/sfm/generated_types_test.cpp.o.d"
  "/root/repo/tests/sfm/message_manager_test.cpp" "tests/CMakeFiles/sfm_test.dir/sfm/message_manager_test.cpp.o" "gcc" "tests/CMakeFiles/sfm_test.dir/sfm/message_manager_test.cpp.o.d"
  "/root/repo/tests/sfm/no_modifier_compile_test.cpp" "tests/CMakeFiles/sfm_test.dir/sfm/no_modifier_compile_test.cpp.o" "gcc" "tests/CMakeFiles/sfm_test.dir/sfm/no_modifier_compile_test.cpp.o.d"
  "/root/repo/tests/sfm/skeleton_types_test.cpp" "tests/CMakeFiles/sfm_test.dir/sfm/skeleton_types_test.cpp.o" "gcc" "tests/CMakeFiles/sfm_test.dir/sfm/skeleton_types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sfm/CMakeFiles/rsf_sfm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
