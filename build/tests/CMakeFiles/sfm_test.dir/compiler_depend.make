# Empty compiler generated dependencies file for sfm_test.
# This may be replaced when dependencies are built.
