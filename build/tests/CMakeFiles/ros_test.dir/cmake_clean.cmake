file(REMOVE_RECURSE
  "CMakeFiles/ros_test.dir/ros/bag_test.cpp.o"
  "CMakeFiles/ros_test.dir/ros/bag_test.cpp.o.d"
  "CMakeFiles/ros_test.dir/ros/callback_queue_test.cpp.o"
  "CMakeFiles/ros_test.dir/ros/callback_queue_test.cpp.o.d"
  "CMakeFiles/ros_test.dir/ros/middleware_test.cpp.o"
  "CMakeFiles/ros_test.dir/ros/middleware_test.cpp.o.d"
  "ros_test"
  "ros_test.pdb"
  "ros_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ros_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
