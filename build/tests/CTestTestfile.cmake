# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/idl_gen_test[1]_include.cmake")
include("/root/repo/build/tests/sfm_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/ros_test[1]_include.cmake")
include("/root/repo/build/tests/converter_test[1]_include.cmake")
include("/root/repo/build/tests/slam_test[1]_include.cmake")
