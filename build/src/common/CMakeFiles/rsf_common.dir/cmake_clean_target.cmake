file(REMOVE_RECURSE
  "librsf_common.a"
)
