# Empty dependencies file for rsf_common.
# This may be replaced when dependencies are built.
