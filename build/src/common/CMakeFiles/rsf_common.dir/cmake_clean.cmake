file(REMOVE_RECURSE
  "CMakeFiles/rsf_common.dir/clock.cpp.o"
  "CMakeFiles/rsf_common.dir/clock.cpp.o.d"
  "CMakeFiles/rsf_common.dir/log.cpp.o"
  "CMakeFiles/rsf_common.dir/log.cpp.o.d"
  "CMakeFiles/rsf_common.dir/md5.cpp.o"
  "CMakeFiles/rsf_common.dir/md5.cpp.o.d"
  "CMakeFiles/rsf_common.dir/stats.cpp.o"
  "CMakeFiles/rsf_common.dir/stats.cpp.o.d"
  "CMakeFiles/rsf_common.dir/status.cpp.o"
  "CMakeFiles/rsf_common.dir/status.cpp.o.d"
  "CMakeFiles/rsf_common.dir/string_util.cpp.o"
  "CMakeFiles/rsf_common.dir/string_util.cpp.o.d"
  "librsf_common.a"
  "librsf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
