file(REMOVE_RECURSE
  "CMakeFiles/rsf_idl.dir/parser.cpp.o"
  "CMakeFiles/rsf_idl.dir/parser.cpp.o.d"
  "CMakeFiles/rsf_idl.dir/registry.cpp.o"
  "CMakeFiles/rsf_idl.dir/registry.cpp.o.d"
  "CMakeFiles/rsf_idl.dir/types.cpp.o"
  "CMakeFiles/rsf_idl.dir/types.cpp.o.d"
  "librsf_idl.a"
  "librsf_idl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_idl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
