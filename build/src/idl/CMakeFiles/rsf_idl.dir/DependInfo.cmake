
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/idl/parser.cpp" "src/idl/CMakeFiles/rsf_idl.dir/parser.cpp.o" "gcc" "src/idl/CMakeFiles/rsf_idl.dir/parser.cpp.o.d"
  "/root/repo/src/idl/registry.cpp" "src/idl/CMakeFiles/rsf_idl.dir/registry.cpp.o" "gcc" "src/idl/CMakeFiles/rsf_idl.dir/registry.cpp.o.d"
  "/root/repo/src/idl/types.cpp" "src/idl/CMakeFiles/rsf_idl.dir/types.cpp.o" "gcc" "src/idl/CMakeFiles/rsf_idl.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
