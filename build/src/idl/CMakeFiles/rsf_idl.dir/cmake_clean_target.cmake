file(REMOVE_RECURSE
  "librsf_idl.a"
)
