# Empty compiler generated dependencies file for rsf_idl.
# This may be replaced when dependencies are built.
