file(REMOVE_RECURSE
  "librsf_serialization.a"
)
