# Empty dependencies file for rsf_serialization.
# This may be replaced when dependencies are built.
