file(REMOVE_RECURSE
  "CMakeFiles/rsf_serialization.dir/flatbuf_mini.cpp.o"
  "CMakeFiles/rsf_serialization.dir/flatbuf_mini.cpp.o.d"
  "CMakeFiles/rsf_serialization.dir/xcdr2.cpp.o"
  "CMakeFiles/rsf_serialization.dir/xcdr2.cpp.o.d"
  "librsf_serialization.a"
  "librsf_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
