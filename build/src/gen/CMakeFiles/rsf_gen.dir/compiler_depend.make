# Empty compiler generated dependencies file for rsf_gen.
# This may be replaced when dependencies are built.
