file(REMOVE_RECURSE
  "librsf_gen.a"
)
