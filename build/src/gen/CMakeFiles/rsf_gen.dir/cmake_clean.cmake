file(REMOVE_RECURSE
  "CMakeFiles/rsf_gen.dir/emitter.cpp.o"
  "CMakeFiles/rsf_gen.dir/emitter.cpp.o.d"
  "CMakeFiles/rsf_gen.dir/layout.cpp.o"
  "CMakeFiles/rsf_gen.dir/layout.cpp.o.d"
  "librsf_gen.a"
  "librsf_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
