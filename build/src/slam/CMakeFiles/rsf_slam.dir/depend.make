# Empty dependencies file for rsf_slam.
# This may be replaced when dependencies are built.
