file(REMOVE_RECURSE
  "librsf_slam.a"
)
