file(REMOVE_RECURSE
  "CMakeFiles/rsf_slam.dir/features.cpp.o"
  "CMakeFiles/rsf_slam.dir/features.cpp.o.d"
  "CMakeFiles/rsf_slam.dir/image_gen.cpp.o"
  "CMakeFiles/rsf_slam.dir/image_gen.cpp.o.d"
  "CMakeFiles/rsf_slam.dir/pipeline.cpp.o"
  "CMakeFiles/rsf_slam.dir/pipeline.cpp.o.d"
  "librsf_slam.a"
  "librsf_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
