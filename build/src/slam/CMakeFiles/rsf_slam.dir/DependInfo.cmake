
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slam/features.cpp" "src/slam/CMakeFiles/rsf_slam.dir/features.cpp.o" "gcc" "src/slam/CMakeFiles/rsf_slam.dir/features.cpp.o.d"
  "/root/repo/src/slam/image_gen.cpp" "src/slam/CMakeFiles/rsf_slam.dir/image_gen.cpp.o" "gcc" "src/slam/CMakeFiles/rsf_slam.dir/image_gen.cpp.o.d"
  "/root/repo/src/slam/pipeline.cpp" "src/slam/CMakeFiles/rsf_slam.dir/pipeline.cpp.o" "gcc" "src/slam/CMakeFiles/rsf_slam.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
