file(REMOVE_RECURSE
  "CMakeFiles/rsf_ros.dir/bag.cpp.o"
  "CMakeFiles/rsf_ros.dir/bag.cpp.o.d"
  "CMakeFiles/rsf_ros.dir/connection_header.cpp.o"
  "CMakeFiles/rsf_ros.dir/connection_header.cpp.o.d"
  "CMakeFiles/rsf_ros.dir/master.cpp.o"
  "CMakeFiles/rsf_ros.dir/master.cpp.o.d"
  "CMakeFiles/rsf_ros.dir/publication.cpp.o"
  "CMakeFiles/rsf_ros.dir/publication.cpp.o.d"
  "librsf_ros.a"
  "librsf_ros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_ros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
