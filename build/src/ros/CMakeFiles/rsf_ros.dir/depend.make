# Empty dependencies file for rsf_ros.
# This may be replaced when dependencies are built.
