file(REMOVE_RECURSE
  "librsf_ros.a"
)
