# Empty compiler generated dependencies file for rsf_net.
# This may be replaced when dependencies are built.
