file(REMOVE_RECURSE
  "CMakeFiles/rsf_net.dir/framing.cpp.o"
  "CMakeFiles/rsf_net.dir/framing.cpp.o.d"
  "CMakeFiles/rsf_net.dir/sim_link.cpp.o"
  "CMakeFiles/rsf_net.dir/sim_link.cpp.o.d"
  "CMakeFiles/rsf_net.dir/socket.cpp.o"
  "CMakeFiles/rsf_net.dir/socket.cpp.o.d"
  "librsf_net.a"
  "librsf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
