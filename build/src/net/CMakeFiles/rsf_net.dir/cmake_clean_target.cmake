file(REMOVE_RECURSE
  "librsf_net.a"
)
