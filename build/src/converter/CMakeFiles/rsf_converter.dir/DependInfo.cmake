
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/converter/analyzer.cpp" "src/converter/CMakeFiles/rsf_converter.dir/analyzer.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/analyzer.cpp.o.d"
  "/root/repo/src/converter/checker.cpp" "src/converter/CMakeFiles/rsf_converter.dir/checker.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/checker.cpp.o.d"
  "/root/repo/src/converter/corpus_synth.cpp" "src/converter/CMakeFiles/rsf_converter.dir/corpus_synth.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/corpus_synth.cpp.o.d"
  "/root/repo/src/converter/lexer.cpp" "src/converter/CMakeFiles/rsf_converter.dir/lexer.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/lexer.cpp.o.d"
  "/root/repo/src/converter/rewriter.cpp" "src/converter/CMakeFiles/rsf_converter.dir/rewriter.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/rewriter.cpp.o.d"
  "/root/repo/src/converter/type_table.cpp" "src/converter/CMakeFiles/rsf_converter.dir/type_table.cpp.o" "gcc" "src/converter/CMakeFiles/rsf_converter.dir/type_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/idl/CMakeFiles/rsf_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
