# Empty compiler generated dependencies file for rsf_converter.
# This may be replaced when dependencies are built.
