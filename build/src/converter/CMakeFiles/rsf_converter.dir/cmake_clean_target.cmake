file(REMOVE_RECURSE
  "librsf_converter.a"
)
