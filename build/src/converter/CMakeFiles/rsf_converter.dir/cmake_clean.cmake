file(REMOVE_RECURSE
  "CMakeFiles/rsf_converter.dir/analyzer.cpp.o"
  "CMakeFiles/rsf_converter.dir/analyzer.cpp.o.d"
  "CMakeFiles/rsf_converter.dir/checker.cpp.o"
  "CMakeFiles/rsf_converter.dir/checker.cpp.o.d"
  "CMakeFiles/rsf_converter.dir/corpus_synth.cpp.o"
  "CMakeFiles/rsf_converter.dir/corpus_synth.cpp.o.d"
  "CMakeFiles/rsf_converter.dir/lexer.cpp.o"
  "CMakeFiles/rsf_converter.dir/lexer.cpp.o.d"
  "CMakeFiles/rsf_converter.dir/rewriter.cpp.o"
  "CMakeFiles/rsf_converter.dir/rewriter.cpp.o.d"
  "CMakeFiles/rsf_converter.dir/type_table.cpp.o"
  "CMakeFiles/rsf_converter.dir/type_table.cpp.o.d"
  "librsf_converter.a"
  "librsf_converter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_converter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
