# Empty dependencies file for rsf_sfm.
# This may be replaced when dependencies are built.
