file(REMOVE_RECURSE
  "CMakeFiles/rsf_sfm.dir/alert.cpp.o"
  "CMakeFiles/rsf_sfm.dir/alert.cpp.o.d"
  "CMakeFiles/rsf_sfm.dir/message_manager.cpp.o"
  "CMakeFiles/rsf_sfm.dir/message_manager.cpp.o.d"
  "librsf_sfm.a"
  "librsf_sfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsf_sfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
