file(REMOVE_RECURSE
  "librsf_sfm.a"
)
