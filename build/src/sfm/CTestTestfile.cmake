# CMake generated Testfile for 
# Source directory: /root/repo/src/sfm
# Build directory: /root/repo/build/src/sfm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
