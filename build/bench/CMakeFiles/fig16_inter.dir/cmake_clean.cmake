file(REMOVE_RECURSE
  "CMakeFiles/fig16_inter.dir/fig16_inter.cpp.o"
  "CMakeFiles/fig16_inter.dir/fig16_inter.cpp.o.d"
  "fig16_inter"
  "fig16_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
