# Empty compiler generated dependencies file for fig16_inter.
# This may be replaced when dependencies are built.
