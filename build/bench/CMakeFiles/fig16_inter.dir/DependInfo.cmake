
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig16_inter.cpp" "bench/CMakeFiles/fig16_inter.dir/fig16_inter.cpp.o" "gcc" "bench/CMakeFiles/fig16_inter.dir/fig16_inter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slam/CMakeFiles/rsf_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/ros/CMakeFiles/rsf_ros.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rsf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serialization/CMakeFiles/rsf_serialization.dir/DependInfo.cmake"
  "/root/repo/build/src/sfm/CMakeFiles/rsf_sfm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
