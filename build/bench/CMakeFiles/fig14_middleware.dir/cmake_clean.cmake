file(REMOVE_RECURSE
  "CMakeFiles/fig14_middleware.dir/fig14_middleware.cpp.o"
  "CMakeFiles/fig14_middleware.dir/fig14_middleware.cpp.o.d"
  "fig14_middleware"
  "fig14_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
