# Empty dependencies file for fig14_middleware.
# This may be replaced when dependencies are built.
