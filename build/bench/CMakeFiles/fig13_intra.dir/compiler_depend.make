# Empty compiler generated dependencies file for fig13_intra.
# This may be replaced when dependencies are built.
