# Empty dependencies file for layouts.
# This may be replaced when dependencies are built.
