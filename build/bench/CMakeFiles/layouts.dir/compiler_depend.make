# Empty compiler generated dependencies file for layouts.
# This may be replaced when dependencies are built.
