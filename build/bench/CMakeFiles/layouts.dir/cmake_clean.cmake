file(REMOVE_RECURSE
  "CMakeFiles/layouts.dir/layouts.cpp.o"
  "CMakeFiles/layouts.dir/layouts.cpp.o.d"
  "layouts"
  "layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
