# Empty compiler generated dependencies file for table1_applicability.
# This may be replaced when dependencies are built.
