
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_applicability.cpp" "bench/CMakeFiles/table1_applicability.dir/table1_applicability.cpp.o" "gcc" "bench/CMakeFiles/table1_applicability.dir/table1_applicability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/converter/CMakeFiles/rsf_converter.dir/DependInfo.cmake"
  "/root/repo/build/src/idl/CMakeFiles/rsf_idl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rsf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
