file(REMOVE_RECURSE
  "CMakeFiles/ablation_micro.dir/ablation_micro.cpp.o"
  "CMakeFiles/ablation_micro.dir/ablation_micro.cpp.o.d"
  "ablation_micro"
  "ablation_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
