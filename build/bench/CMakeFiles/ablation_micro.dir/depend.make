# Empty dependencies file for ablation_micro.
# This may be replaced when dependencies are built.
