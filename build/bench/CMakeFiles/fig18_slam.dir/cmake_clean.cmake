file(REMOVE_RECURSE
  "CMakeFiles/fig18_slam.dir/fig18_slam.cpp.o"
  "CMakeFiles/fig18_slam.dir/fig18_slam.cpp.o.d"
  "fig18_slam"
  "fig18_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
