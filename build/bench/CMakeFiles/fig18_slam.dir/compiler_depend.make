# Empty compiler generated dependencies file for fig18_slam.
# This may be replaced when dependencies are built.
