# Empty dependencies file for bag_record_replay.
# This may be replaced when dependencies are built.
