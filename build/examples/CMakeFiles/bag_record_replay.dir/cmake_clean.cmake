file(REMOVE_RECURSE
  "CMakeFiles/bag_record_replay.dir/bag_record_replay.cpp.o"
  "CMakeFiles/bag_record_replay.dir/bag_record_replay.cpp.o.d"
  "bag_record_replay"
  "bag_record_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bag_record_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
