file(REMOVE_RECURSE
  "CMakeFiles/converter_demo.dir/converter_demo.cpp.o"
  "CMakeFiles/converter_demo.dir/converter_demo.cpp.o.d"
  "converter_demo"
  "converter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
