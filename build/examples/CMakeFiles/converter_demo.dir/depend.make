# Empty dependencies file for converter_demo.
# This may be replaced when dependencies are built.
