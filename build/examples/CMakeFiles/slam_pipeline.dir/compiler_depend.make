# Empty compiler generated dependencies file for slam_pipeline.
# This may be replaced when dependencies are built.
