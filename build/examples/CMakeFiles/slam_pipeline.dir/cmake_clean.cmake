file(REMOVE_RECURSE
  "CMakeFiles/slam_pipeline.dir/slam_pipeline.cpp.o"
  "CMakeFiles/slam_pipeline.dir/slam_pipeline.cpp.o.d"
  "slam_pipeline"
  "slam_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
