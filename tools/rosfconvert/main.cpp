// rosf-convert — the ROS-SF Converter CLI (paper §4.3.2 / Fig. 10b).
//
// Checks source files against the three SFM applicability assumptions and
// (optionally) applies the Fig. 11 stack-to-heap rewrite.
//
//   rosfconvert --msg-dir msgs check  file.cpp [more.cpp ...]
//   rosfconvert --msg-dir msgs check-dir  src/
//   rosfconvert --msg-dir msgs rewrite file.cpp        (prints to stdout)
//   rosfconvert --msg-dir msgs rewrite -i file.cpp     (in place)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "converter/analyzer.h"
#include "converter/checker.h"
#include "converter/rewriter.h"
#include "idl/registry.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --msg-dir DIR (check FILE... | check-dir DIR | "
               "rewrite [-i] FILE)\n",
               argv0);
  return 2;
}

rsf::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return rsf::UnavailableError("cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void PrintReport(const std::string& file,
                 const rsf::conv::FileReport& report) {
  if (report.findings.empty()) {
    std::printf("%s: applicable (classes:", file.c_str());
    for (const auto& message_class : report.classes_used) {
      std::printf(" %s", message_class.c_str());
    }
    std::printf(")\n");
    return;
  }
  std::printf("%s: %zu violation(s)\n", file.c_str(),
              report.findings.size());
  for (const auto& finding : report.findings) {
    std::printf("  line %3d  %-22s %s\n            %s\n", finding.line,
                rsf::conv::FindingKindName(finding.kind),
                finding.path.c_str(), finding.note.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string msg_dir = "msgs";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--msg-dir") == 0 && i + 1 < argc) {
      msg_dir = argv[++i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return Usage(argv[0]);

  rsf::idl::SpecRegistry registry;
  if (const auto status = registry.LoadDirectory(msg_dir); !status.ok()) {
    std::fprintf(stderr, "rosfconvert: %s\n", status.ToString().c_str());
    return 1;
  }
  const auto types = rsf::conv::TypeTable::FromRegistry(registry);

  const std::string& command = args[0];
  if (command == "check") {
    if (args.size() < 2) return Usage(argv[0]);
    int violations = 0;
    for (size_t i = 1; i < args.size(); ++i) {
      auto source = ReadFile(args[i]);
      if (!source.ok()) {
        std::fprintf(stderr, "rosfconvert: %s\n",
                     source.status().ToString().c_str());
        return 1;
      }
      const auto report = rsf::conv::AnalyzeSource(*source, types);
      PrintReport(args[i], report);
      violations += static_cast<int>(report.findings.size());
    }
    return violations == 0 ? 0 : 3;
  }

  if (command == "check-dir") {
    if (args.size() != 2) return Usage(argv[0]);
    auto reports = rsf::conv::AnalyzeDirectory(args[1], types);
    if (!reports.ok()) {
      std::fprintf(stderr, "rosfconvert: %s\n",
                   reports.status().ToString().c_str());
      return 1;
    }
    int violations = 0;
    for (const auto& [file, report] : *reports) {
      PrintReport(file, report);
      violations += static_cast<int>(report.findings.size());
    }
    std::printf("\n%zu file(s) checked, %d violation(s)\n", reports->size(),
                violations);
    return violations == 0 ? 0 : 3;
  }

  if (command == "rewrite") {
    bool in_place = false;
    size_t file_index = 1;
    if (args.size() >= 2 && args[1] == "-i") {
      in_place = true;
      file_index = 2;
    }
    if (args.size() != file_index + 1) return Usage(argv[0]);
    const std::string& path = args[file_index];

    auto source = ReadFile(path);
    if (!source.ok()) {
      std::fprintf(stderr, "rosfconvert: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    const auto report = rsf::conv::AnalyzeSource(*source, types);
    const auto result = rsf::conv::RewriteStackDeclarations(*source, report);
    if (in_place) {
      std::ofstream out(path, std::ios::trunc);
      out << result.source;
      std::fprintf(stderr, "rosfconvert: %zu declaration(s) rewritten in %s\n",
                   result.rewritten, path.c_str());
    } else {
      std::fputs(result.source.c_str(), stdout);
      std::fprintf(stderr, "rosfconvert: %zu declaration(s) rewritten\n",
                   result.rewritten);
    }
    return 0;
  }
  return Usage(argv[0]);
}
