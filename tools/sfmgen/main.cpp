// sfmgen — the SFM Generator CLI (paper §4.3.1).
//
// Reads a tree of ROS1 `.msg` files and emits, for every message, both the
// regular C++ struct header and the serialization-free (SFM) header.  Run
// at build time by CMake; also usable standalone:
//
//   sfmgen --msg-dir msgs --out build/gen_msgs [--stamp file]
//   sfmgen --msg-dir msgs --print-layout sensor_msgs/Image
//   sfmgen --msg-dir msgs --list
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "gen/emitter.h"
#include "gen/layout.h"
#include "idl/registry.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --msg-dir DIR (--out DIR [--stamp FILE] | "
               "--print-layout PKG/NAME | --list)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string msg_dir;
  std::string out_dir;
  std::string stamp;
  std::string print_layout;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--msg-dir") {
      if (const char* v = next()) msg_dir = v; else return Usage(argv[0]);
    } else if (arg == "--out") {
      if (const char* v = next()) out_dir = v; else return Usage(argv[0]);
    } else if (arg == "--stamp") {
      if (const char* v = next()) stamp = v; else return Usage(argv[0]);
    } else if (arg == "--print-layout") {
      if (const char* v = next()) print_layout = v; else return Usage(argv[0]);
    } else if (arg == "--list") {
      list = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (msg_dir.empty()) return Usage(argv[0]);

  rsf::idl::SpecRegistry registry;
  if (const auto status = registry.LoadDirectory(msg_dir); !status.ok()) {
    std::fprintf(stderr, "sfmgen: %s\n", status.ToString().c_str());
    return 1;
  }
  if (const auto status = registry.ValidateReferences(); !status.ok()) {
    std::fprintf(stderr, "sfmgen: %s\n", status.ToString().c_str());
    return 1;
  }

  if (list) {
    for (const auto& key : registry.Keys()) {
      const auto md5 = registry.Md5For(key);
      std::printf("%-40s %s\n", key.c_str(),
                  md5.ok() ? md5->c_str() : md5.status().ToString().c_str());
    }
    return 0;
  }

  if (!print_layout.empty()) {
    const auto layout = rsf::gen::ComputeSfmLayout(registry, print_layout);
    if (!layout.ok()) {
      std::fprintf(stderr, "sfmgen: %s\n", layout.status().ToString().c_str());
      return 1;
    }
    std::fputs(rsf::gen::RenderLayoutTable(*layout, print_layout).c_str(),
               stdout);
    return 0;
  }

  if (out_dir.empty()) return Usage(argv[0]);
  if (const auto status = rsf::gen::GenerateAll(registry, out_dir);
      !status.ok()) {
    std::fprintf(stderr, "sfmgen: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!stamp.empty()) {
    std::ofstream out(stamp, std::ios::trunc);
    out << "ok\n";
  }
  return 0;
}
