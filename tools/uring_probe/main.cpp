// uring_probe: exit 0 iff this host can create an io_uring instance with
// the opcodes the uring backend needs (net/uring_backend.h).
//
// CI uses this as an explicit gate: the uring job runs the probe first and
// turns "seccomp blocks io_uring_setup" into a loudly-logged skip instead
// of a silently green run that never exercised the backend.  Exit codes:
//   0  io_uring usable (setup + RECV/SENDMSG/ASYNC_CANCEL opcodes)
//   1  io_uring unavailable (reason printed to stdout)
#include <cstdio>

#include "net/io_backend.h"

int main() {
  if (rsf::net::UringAvailable()) {
    auto backend = rsf::net::MakeIoBackend(rsf::net::IoBackendKind::kUring);
    if (backend != nullptr && backend->SupportsSubmission()) {
      std::printf("io_uring usable (send_zc=%s)\n",
                  backend->SupportsZeroCopySend() ? "yes" : "no");
      return 0;
    }
    std::printf("io_uring setup succeeded but required opcodes missing\n");
    return 1;
  }
  std::printf("io_uring unavailable: io_uring_setup probe failed "
              "(seccomp filter or pre-5.1 kernel)\n");
  return 1;
}
