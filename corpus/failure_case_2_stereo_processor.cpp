// Paper Fig. 20 — stereo_image_proc processor.cpp shape: a DisparityImage
// output parameter whose nested Image vector is resized.  Callers may pass
// an already-sized message, so this is a possible violation of the One-Shot
// Vector Resizing Assumption (the paper counts it as a failure).
#include "stereo_msgs/DisparityImage.h"

void processDisparity(const cv::Mat& left_rect, const cv::Mat& right_rect,
                      const image_geometry::StereoCameraModel& model,
                      stereo_msgs::DisparityImage& disparity) {
  static const int DPP = 16;
  sensor_msgs::Image& dimage = disparity.image;  // line 104
  dimage.height = left_rect.rows;
  dimage.width = left_rect.cols;
  dimage.step = dimage.width * 4;
  dimage.data.resize(dimage.step * dimage.height);  // line 109
  (void)right_rect; (void)model; (void)DPP;
}
