// Paper Fig. 21, lower half — the rewritten version: count valid points
// first, resize once, then index-assign.  Also faster under plain ROS.
#include "sensor_msgs/PointCloud.h"

void processPoints(const cv::Mat_<cv::Vec3f>& dense_points_,
                   ros::Publisher& pub) {
  sensor_msgs::PointCloud points;
  int cnt = 0, total_valid = 0;
  for (int32_t u = 0; u < dense_points_.rows; ++u)
    for (int32_t v = 0; v < dense_points_.cols; ++v)
      if (isValidPoint(dense_points_(u, v)))
        total_valid++;
  points.points.resize(total_valid);
  for (int32_t u = 0; u < dense_points_.rows; ++u) {
    for (int32_t v = 0; v < dense_points_.cols; ++v) {
      if (isValidPoint(dense_points_(u, v))) {
        geometry_msgs::Point32 pt;
        pt.x = dense_points_(u, v)[0];
        points.points[cnt++] = pt;
      }
    }
  }
  pub.publish(points);
}
