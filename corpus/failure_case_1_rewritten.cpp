// Paper Fig. 19, lower half — the rewritten version that satisfies the
// assumption: the final frame_id is supplied to the conversion helper, so
// every string is assigned exactly once.
#include "sensor_msgs/Image.h"

void do_work(const sensor_msgs::Image::ConstPtr& msg,
             ros::Publisher& img_pub_, const TransformStamped& transform) {
  cv::Mat out_image = rotate(msg);
  Header header_tmp = {msg->header.seq, msg->header.stamp,
                       transform.child_frame_id};
  sensor_msgs::Image::Ptr out_img =
      cv_bridge::CvImage(header_tmp, msg->encoding, out_image).toImageMsg();
  img_pub_.publish(out_img);
}
