// Representative applicable file: a LaserScan filter with a typedef'd
// message alias (exercises the converter's alias resolution).
#include "sensor_msgs/LaserScan.h"

typedef sensor_msgs::LaserScan Scan;

void filter(const Scan::ConstPtr& in, ros::Publisher& pub) {
  Scan out;
  out.header.frame_id = "laser_link";
  out.angle_min = in->angle_min;
  out.angle_max = in->angle_max;
  out.ranges.resize(in->ranges.size());
  for (size_t i = 0; i < in->ranges.size(); ++i) {
    out.ranges[i] = clamp(in->ranges[i]);
  }
  pub.publish(out);
}
