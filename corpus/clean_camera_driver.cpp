// Representative applicable file: a camera driver filling a fresh Image.
#include "sensor_msgs/Image.h"

using namespace sensor_msgs;

void capture(ros::Publisher& pub, unsigned seq, int h, int w) {
  Image img;
  img.header.seq = seq;
  img.header.frame_id = "camera_optical";
  img.height = h;
  img.width = w;
  img.encoding = "rgb8";
  img.step = w * 3;
  img.data.resize(h * w * 3);
  for (int i = 0; i < h * w * 3; ++i) img.data[i] = read_pixel(i);
  pub.publish(img);
}
