// Paper Fig. 19 — image_rotate_nodelet.cpp shape: an OpenCV-transformed
// image is converted to a ROS message by a helper, then one header field is
// patched afterwards.  The patch is a second write to an assigned string
// (violates the One-Shot String Assignment Assumption).
#include "sensor_msgs/Image.h"

void do_work(const sensor_msgs::Image::ConstPtr& msg,
             ros::Publisher& img_pub_, const TransformStamped& transform) {
  cv::Mat out_image = rotate(msg);
  sensor_msgs::Image::Ptr out_img =
      cv_bridge::CvImage(msg->header, msg->encoding, out_image).toImageMsg();
  out_img->header.frame_id = transform.child_frame_id;  // line 219
  img_pub_.publish(out_img);
}
