// Paper Fig. 21 — the push_back pattern: only valid points are appended, so
// the points vector is built with a modifier method (violates the No
// Modifier Assumption; a compile error under ROS-SF).
#include "sensor_msgs/PointCloud.h"

void processPoints(const cv::Mat_<cv::Vec3f>& dense_points_,
                   sensor_msgs::PointCloud& points) {
  points.points.resize(0);  // line 147
  for (int32_t u = 0; u < dense_points_.rows; ++u) {
    for (int32_t v = 0; v < dense_points_.cols; ++v) {
      if (isValidPoint(dense_points_(u, v))) {
        geometry_msgs::Point32 pt;
        pt.x = dense_points_(u, v)[0];
        points.points.push_back(pt);  // line 164
      }
    }
  }
}
